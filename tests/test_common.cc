/**
 * @file
 * Unit tests for the common substrate: RNG determinism and
 * distributional sanity, vector math, statistics, matrix algebra (the
 * FID building blocks), table formatting, and the task-based thread
 * pool (batch waits, nested submission, concurrent submitters).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "src/common/matrix.hh"
#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/common/table.hh"
#include "src/common/thread_pool.hh"
#include "src/common/vec.hh"

namespace modm {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.uniform());
    EXPECT_NEAR(stat.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.normal());
    EXPECT_NEAR(stat.mean(), 0.0, 0.02);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(17);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.exponential(4.0));
    EXPECT_NEAR(stat.mean(), 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatches)
{
    Rng rng(19);
    RunningStat small, large;
    for (int i = 0; i < 20000; ++i) {
        small.add(static_cast<double>(rng.poisson(3.0)));
        large.add(static_cast<double>(rng.poisson(80.0)));
    }
    EXPECT_NEAR(small.mean(), 3.0, 0.1);
    EXPECT_NEAR(large.mean(), 80.0, 0.5);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(7), 7u);
}

TEST(Rng, GeometricMean)
{
    Rng rng(29);
    RunningStat stat;
    const double p = 0.2;
    for (int i = 0; i < 50000; ++i)
        stat.add(static_cast<double>(rng.geometric(p)));
    // Mean failures before success = (1 - p) / p = 4.
    EXPECT_NEAR(stat.mean(), 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    Rng child2 = parent.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += child.next() == child2.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfDistribution zipf(100, 1.1);
    double total = 0.0;
    for (std::uint64_t k = 0; k < zipf.size(); ++k)
        total += zipf.prob(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SkewFavoursSmallRanks)
{
    ZipfDistribution zipf(1000, 1.2);
    EXPECT_GT(zipf.prob(0), zipf.prob(1));
    EXPECT_GT(zipf.prob(1), zipf.prob(10));
    EXPECT_GT(zipf.prob(10), zipf.prob(500));
}

TEST(Zipf, EmpiricalMatchesPmf)
{
    ZipfDistribution zipf(50, 1.0);
    Rng rng(37);
    std::vector<std::uint64_t> counts(50, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (std::uint64_t k : {0ull, 1ull, 5ull, 20ull}) {
        const double freq = static_cast<double>(counts[k]) / n;
        EXPECT_NEAR(freq, zipf.prob(k), 0.01) << "k=" << k;
    }
}

TEST(Vec, DotAndNorm)
{
    Vec a = {3.0f, 4.0f};
    EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
    EXPECT_DOUBLE_EQ(norm(a), 5.0);
}

TEST(Vec, NormalizeYieldsUnitLength)
{
    Vec a = {1.0f, 2.0f, 2.0f};
    normalize(a);
    EXPECT_NEAR(norm(a), 1.0, 1e-6);
}

TEST(Vec, CosineBounds)
{
    Rng rng(41);
    for (int i = 0; i < 100; ++i) {
        const Vec a = randomUnitVec(16, rng);
        const Vec b = randomUnitVec(16, rng);
        const double c = cosine(a, b);
        EXPECT_GE(c, -1.0 - 1e-9);
        EXPECT_LE(c, 1.0 + 1e-9);
    }
    const Vec a = randomUnitVec(16, rng);
    EXPECT_NEAR(cosine(a, a), 1.0, 1e-6);
}

TEST(Vec, RandomUnitVecsNearlyOrthogonalInHighDim)
{
    Rng rng(43);
    RunningStat stat;
    for (int i = 0; i < 500; ++i) {
        const Vec a = randomUnitVec(64, rng);
        const Vec b = randomUnitVec(64, rng);
        stat.add(cosine(a, b));
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.02);
    EXPECT_LT(stat.stddev(), 0.2);
}

TEST(Vec, JitterControlsCosine)
{
    // cos(jittered, base) ~= 1/sqrt(1 + s^2).
    Rng rng(47);
    for (const double s : {0.1, 0.5, 1.0}) {
        RunningStat stat;
        for (int i = 0; i < 300; ++i) {
            const Vec base = randomUnitVec(64, rng);
            const Vec out = jitterUnitVec(base, s, rng);
            stat.add(cosine(base, out));
        }
        EXPECT_NEAR(stat.mean(), 1.0 / std::sqrt(1.0 + s * s), 0.02)
            << "strength " << s;
    }
}

TEST(Vec, LerpEndpoints)
{
    const Vec a = {1.0f, 0.0f};
    const Vec b = {0.0f, 1.0f};
    EXPECT_EQ(lerp(a, b, 0.0), a);
    EXPECT_EQ(lerp(a, b, 1.0), b);
    const Vec mid = lerp(a, b, 0.5);
    EXPECT_FLOAT_EQ(mid[0], 0.5f);
    EXPECT_FLOAT_EQ(mid[1], 0.5f);
}

TEST(RunningStat, WelfordMatchesDirect)
{
    RunningStat stat;
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
    for (double x : xs)
        stat.add(x);
    EXPECT_DOUBLE_EQ(stat.mean(), 6.2);
    EXPECT_NEAR(stat.variance(), 37.2, 1e-9);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 16.0);
    EXPECT_EQ(stat.count(), 5u);
}

TEST(PercentileTracker, ExactPercentiles)
{
    PercentileTracker tracker;
    for (int i = 1; i <= 100; ++i)
        tracker.add(static_cast<double>(i));
    EXPECT_NEAR(tracker.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(tracker.percentile(100.0), 100.0, 1e-9);
    EXPECT_NEAR(tracker.percentile(50.0), 50.5, 1e-9);
    EXPECT_NEAR(tracker.p99(), 99.01, 0.1);
}

TEST(PercentileTracker, InterleavedAddAndQuery)
{
    PercentileTracker tracker;
    tracker.add(10.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(50.0), 10.0);
    tracker.add(20.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(100.0), 20.0);
    tracker.add(0.0);
    EXPECT_DOUBLE_EQ(tracker.percentile(0.0), 0.0);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);  // clamps to bin 0
    h.add(0.5);
    h.add(9.5);
    h.add(25.0);  // clamps to last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_NEAR(h.binCenter(0), 0.5, 1e-9);
    EXPECT_NEAR(h.binFraction(0), 0.5, 1e-9);
}

TEST(WindowedRate, ExpiresOldEvents)
{
    WindowedRate rate(60.0);
    for (int i = 0; i < 30; ++i)
        rate.record(static_cast<double>(i));
    EXPECT_EQ(rate.countInWindow(30.0), 30u);
    EXPECT_NEAR(rate.perMinute(30.0), 30.0, 1e-9);
    // 100 s later everything expired.
    EXPECT_EQ(rate.countInWindow(130.0), 0u);
}

TEST(Matrix, MultiplyIdentity)
{
    Matrix m(3);
    m.at(0, 1) = 2.0;
    m.at(2, 0) = -1.0;
    const Matrix i = Matrix::identity(3);
    const Matrix p = m * i;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(p.at(r, c), m.at(r, c));
}

TEST(Matrix, EigenOfDiagonal)
{
    Matrix m(3);
    m.at(0, 0) = 3.0;
    m.at(1, 1) = 1.0;
    m.at(2, 2) = 2.0;
    auto eig = eigenSymmetric(m);
    std::sort(eig.values.begin(), eig.values.end());
    EXPECT_NEAR(eig.values[0], 1.0, 1e-9);
    EXPECT_NEAR(eig.values[1], 2.0, 1e-9);
    EXPECT_NEAR(eig.values[2], 3.0, 1e-9);
}

TEST(Matrix, SqrtSquaresBack)
{
    // Random symmetric PSD matrix: A = B B^T.
    Rng rng(53);
    const std::size_t n = 8;
    Matrix b(n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b.at(r, c) = rng.normal();
    const Matrix a = b * b.transposed();
    const Matrix root = sqrtSymmetricPSD(a);
    const Matrix square = root * root;
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_NEAR(square.at(r, c), a.at(r, c), 1e-6);
}

TEST(Matrix, CovarianceOfKnownSamples)
{
    // Two perfectly anti-correlated coordinates.
    std::vector<Vec> samples = {
        {1.0f, -1.0f}, {-1.0f, 1.0f}, {2.0f, -2.0f}, {-2.0f, 2.0f}};
    const Matrix cov = covariance(samples);
    EXPECT_NEAR(cov.at(0, 0), cov.at(1, 1), 1e-9);
    EXPECT_NEAR(cov.at(0, 1), -cov.at(0, 0), 1e-9);
}

TEST(Frechet, ZeroForIdenticalPopulations)
{
    Rng rng(59);
    std::vector<Vec> pop;
    for (int i = 0; i < 200; ++i)
        pop.push_back(gaussianVec(8, rng));
    EXPECT_NEAR(frechetDistance(pop, pop), 0.0, 1e-6);
}

TEST(Frechet, DetectsMeanShift)
{
    Rng rng(61);
    std::vector<Vec> a, b;
    for (int i = 0; i < 2000; ++i) {
        a.push_back(gaussianVec(4, rng));
        Vec shifted = gaussianVec(4, rng);
        shifted[0] += 3.0f;
        b.push_back(shifted);
    }
    // FID of a pure mean shift -> |delta mu|^2 = 9.
    EXPECT_NEAR(frechetDistance(a, b), 9.0, 0.8);
}

TEST(Frechet, GrowsWithCovarianceInflation)
{
    Rng rng(67);
    std::vector<Vec> a, b, c;
    for (int i = 0; i < 2000; ++i) {
        a.push_back(gaussianVec(4, rng));
        Vec wide = gaussianVec(4, rng);
        scale(wide, 2.0);
        b.push_back(wide);
        Vec wider = gaussianVec(4, rng);
        scale(wider, 3.0);
        c.push_back(wider);
    }
    const double ab = frechetDistance(a, b);
    const double ac = frechetDistance(a, c);
    EXPECT_GT(ab, 1.0);
    EXPECT_GT(ac, ab);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"alpha", Table::fmt(1.5)});
    t.addRow({"b", Table::fmt(std::uint64_t{42})});
    const std::string s = t.toString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("name,value"), std::string::npos);
}

TEST(ThreadPool, ParallelForCoversEveryShardOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> counts(137);
    pool.parallelFor(counts.size(), [&](std::size_t shard) {
        ++counts[shard];
    });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline)
{
    ThreadPool pool(0);
    std::size_t ran = 0;
    pool.parallelFor(10, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 10u);
    ThreadPool::TaskGroup group(pool);
    group.submit([&] { ++ran; });
    group.submit([&] { ++ran; });
    group.wait();
    EXPECT_EQ(ran, 12u);
}

TEST(ThreadPool, TaskGroupRunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 100; ++i)
        group.submit([&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 100);
    // A drained group is reusable.
    group.submit([&ran] { ++ran; });
    group.wait();
    EXPECT_EQ(ran.load(), 101);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Every outer task itself runs a parallelFor on the same pool while
    // the pool is saturated — the regression case for the old
    // one-job-at-a-time design, where a second submitter serialized and
    // a nested one deadlocked.
    ThreadPool pool(2);
    std::atomic<int> inner{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPool, ConcurrentSubmittersProceedInParallel)
{
    // Two independent threads each drive their own batches on one pool;
    // both must complete (and not corrupt each other's bookkeeping).
    ThreadPool pool(3);
    std::atomic<int> total{0};
    auto driver = [&] {
        for (int round = 0; round < 20; ++round) {
            pool.parallelFor(16, [&](std::size_t) { ++total; });
        }
    };
    std::thread a(driver), b(driver);
    a.join();
    b.join();
    EXPECT_EQ(total.load(), 2 * 20 * 16);
}

TEST(ThreadPool, TasksMaySubmitToTheirOwnGroup)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    ThreadPool::TaskGroup group(pool);
    for (int i = 0; i < 4; ++i) {
        group.submit([&] {
            ++ran;
            // Grow the batch from inside a running task; wait() must
            // pick these up too.
            group.submit([&ran] { ++ran; });
        });
    }
    group.wait();
    EXPECT_EQ(ran.load(), 8);
}

} // namespace
} // namespace modm

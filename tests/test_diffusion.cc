/**
 * @file
 * Unit tests for the diffusion substrate: model specs and profiled
 * throughputs, the noise schedule, and the sampler's generation /
 * refinement response (the mechanisms behind the paper's Fig. 5a).
 */

#include <gtest/gtest.h>

#include "src/common/stats.hh"
#include "src/diffusion/sampler.hh"
#include "src/workload/generator.hh"

namespace modm::diffusion {
namespace {

workload::Prompt
makePrompt(std::uint64_t id, Rng &rng)
{
    workload::Prompt p;
    p.id = id;
    p.text = "test prompt";
    p.visualConcept = randomUnitVec(64, rng);
    p.lexicalStyle = randomUnitVec(64, rng);
    return p;
}

TEST(ModelSpec, RegistryContainsPaperModels)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 5u);
    EXPECT_EQ(modelByName("SD3.5L").paramsB, 8.0);
    EXPECT_EQ(modelByName("FLUX").paramsB, 12.0);
    EXPECT_EQ(modelByName("SDXL").paramsB, 3.0);
    EXPECT_EQ(modelByName("SANA").paramsB, 1.6);
    EXPECT_EQ(modelByName("SD3.5L-Turbo").defaultSteps, 10);
}

TEST(ModelSpec, LatencyOrderingMatchesPaper)
{
    // Per-image latency: SD3.5L > SDXL > SANA; Turbo beats SDXL via
    // its 10-step schedule despite full-size steps.
    const auto gpu = GpuKind::A40;
    EXPECT_GT(flux1Dev().fullLatency(gpu), sd35Large().fullLatency(gpu));
    EXPECT_GT(sd35Large().fullLatency(gpu), sdxl().fullLatency(gpu));
    EXPECT_GT(sdxl().fullLatency(gpu), sana().fullLatency(gpu));
    EXPECT_GT(sdxl().fullLatency(gpu),
              sd35LargeTurbo().fullLatency(gpu));
}

TEST(ModelSpec, VanillaThroughputCeilingsMatchPaper)
{
    // ~1 req/min/GPU on A40 (Fig. 12 left: 4 GPUs saturate near 4-5
    // req/min) and ~0.6 req/min/GPU on MI210 (Fig. 10: 16 GPUs saturate
    // near 10 req/min).
    EXPECT_NEAR(sd35Large().throughputPerMin(GpuKind::A40), 1.0, 0.1);
    EXPECT_NEAR(16.0 * sd35Large().throughputPerMin(GpuKind::MI210),
                10.0, 1.0);
}

TEST(ModelSpec, StepCostRatiosMatchPaper)
{
    const double large = sd35Large().stepLatencyA40;
    EXPECT_NEAR(sdxl().stepLatencyA40 / large, 0.35, 0.02);
    EXPECT_NEAR(sana().stepLatencyA40 / large, 0.15, 0.02);
}

TEST(ModelSpec, EnergyScalesWithSteps)
{
    const auto m = sd35Large();
    EXPECT_NEAR(m.stepEnergyJ(GpuKind::A40, 50),
                50.0 * 1.20 * 300.0, 1e-6);
    EXPECT_GT(m.stepEnergyJ(GpuKind::A40, 50),
              m.stepEnergyJ(GpuKind::A40, 20));
}

TEST(Schedule, SigmasDecreaseMonotonically)
{
    NoiseSchedule schedule;
    for (int i = 0; i < schedule.steps(); ++i)
        EXPECT_GT(schedule.sigma(i), schedule.sigma(i + 1));
    EXPECT_DOUBLE_EQ(schedule.sigma(schedule.steps()), 0.0);
}

TEST(Schedule, BoundsMatchConfig)
{
    ScheduleConfig config;
    config.sigmaMax = 10.0;
    config.sigmaMin = 0.1;
    NoiseSchedule schedule(config);
    EXPECT_NEAR(schedule.sigma(0), 10.0, 1e-9);
    EXPECT_NEAR(schedule.sigma(schedule.steps() - 1), 0.1, 1e-9);
    EXPECT_NEAR(schedule.sigmaNorm(0), 1.0, 1e-9);
}

TEST(Schedule, ResidualFactorShrinksForEarlyEntry)
{
    NoiseSchedule schedule;
    // Entering earlier leaves more steps -> more contraction.
    EXPECT_LT(schedule.residualFactor(5), schedule.residualFactor(30));
    EXPECT_LE(schedule.residualFactor(0), 1.0);
}

class SamplerTest : public ::testing::Test
{
  protected:
    Sampler sampler_{42};
    Rng rng_{7};
};

TEST_F(SamplerTest, GenerationIsDeterministic)
{
    Sampler a(42), b(42);
    const auto p = makePrompt(1, rng_);
    const auto ia = a.generate(sd35Large(), p, 0.0);
    const auto ib = b.generate(sd35Large(), p, 0.0);
    EXPECT_EQ(ia.content, ib.content);
    EXPECT_DOUBLE_EQ(ia.fidelity, ib.fidelity);
}

TEST_F(SamplerTest, DifferentSeedsDifferentImages)
{
    Sampler a(42), b(43);
    const auto p = makePrompt(1, rng_);
    EXPECT_NE(a.generate(sd35Large(), p, 0.0).content,
              b.generate(sd35Large(), p, 0.0).content);
}

TEST_F(SamplerTest, GenerationAlignsWithConcept)
{
    RunningStat align;
    for (int i = 0; i < 100; ++i) {
        const auto p = makePrompt(i, rng_);
        const auto img = sampler_.generate(sd35Large(), p, 0.0);
        align.add(cosine(img.content, p.visualConcept));
    }
    EXPECT_GT(align.mean(), 0.75);
    EXPECT_LT(align.mean(), 0.95);
}

TEST_F(SamplerTest, LargeModelAlignsBetterThanFlux)
{
    RunningStat sd, fx;
    for (int i = 0; i < 100; ++i) {
        const auto p = makePrompt(i, rng_);
        sd.add(cosine(sampler_.generate(sd35Large(), p, 0.0).content,
                      p.visualConcept));
        fx.add(cosine(sampler_.generate(flux1Dev(), p, 0.0).content,
                      p.visualConcept));
    }
    EXPECT_GT(sd.mean(), fx.mean());
}

TEST_F(SamplerTest, FidelityTracksModelClass)
{
    const auto p = makePrompt(1, rng_);
    const auto large = sampler_.generate(sd35Large(), p, 0.0);
    const auto small = sampler_.generate(sana(), p, 0.0);
    EXPECT_GT(large.fidelity, small.fidelity);
}

TEST_F(SamplerTest, UndersamplingCostsFidelity)
{
    const auto p = makePrompt(2, rng_);
    const auto full = sampler_.generate(sd35Large(), p, 50, 0.0);
    const auto half = sampler_.generate(sd35Large(), p, 20, 0.0);
    EXPECT_GT(full.fidelity, half.fidelity);
}

TEST_F(SamplerTest, LockGrowsWithK)
{
    EXPECT_LT(sampler_.lockAt(5), sampler_.lockAt(15));
    EXPECT_LT(sampler_.lockAt(15), sampler_.lockAt(30));
    EXPECT_LE(sampler_.lockAt(49), sampler_.config().lockMax);
}

TEST_F(SamplerTest, RefinementPreservesBaseStructureMoreAtHighK)
{
    // Refine a *mismatched* base: the result must stay closer to the
    // base for larger k (early structure locked in).
    const auto basePrompt = makePrompt(10, rng_);
    const auto baseImg = sampler_.generate(sd35Large(), basePrompt, 0.0);
    auto query = makePrompt(11, rng_);

    const auto lowK = sampler_.refine(sdxl(), query, baseImg, 5, 0.0);
    const auto highK = sampler_.refine(sdxl(), query, baseImg, 30, 0.0);
    EXPECT_GT(cosine(highK.content, baseImg.content),
              cosine(lowK.content, baseImg.content));
    EXPECT_GT(cosine(lowK.content, query.visualConcept),
              cosine(highK.content, query.visualConcept));
}

TEST_F(SamplerTest, RefinementOfSimilarBaseKeepsQuality)
{
    // Paper §5.1: refining a close match with a small model preserves
    // quality. Base and query from the same "session" (small drift).
    RunningStat refinedAlign, refinedFid;
    for (int i = 0; i < 100; ++i) {
        auto base = makePrompt(100 + i, rng_);
        const auto baseImg = sampler_.generate(sd35Large(), base, 0.0);
        workload::Prompt query = base;
        query.id = 5000 + i;
        query.visualConcept =
            jitterUnitVec(base.visualConcept, 0.15, rng_);
        const auto refined =
            sampler_.refine(sdxl(), query, baseImg, 20, 0.0);
        refinedAlign.add(cosine(refined.content, query.visualConcept));
        refinedFid.add(refined.fidelity);
    }
    EXPECT_GT(refinedAlign.mean(), 0.80);
    EXPECT_GT(refinedFid.mean(), 0.85);
}

TEST_F(SamplerTest, MismatchedRefinementCreatesArtifacts)
{
    RunningStat matchedFid, mismatchedFid;
    for (int i = 0; i < 100; ++i) {
        auto base = makePrompt(200 + i, rng_);
        const auto baseImg = sampler_.generate(sd35Large(), base, 0.0);
        workload::Prompt close = base;
        close.id = 6000 + i;
        close.visualConcept =
            jitterUnitVec(base.visualConcept, 0.1, rng_);
        workload::Prompt far = base;
        far.id = 7000 + i;
        far.visualConcept = randomUnitVec(64, rng_);
        matchedFid.add(
            sampler_.refine(sdxl(), close, baseImg, 25, 0.0).fidelity);
        mismatchedFid.add(
            sampler_.refine(sdxl(), far, baseImg, 25, 0.0).fidelity);
    }
    EXPECT_GT(matchedFid.mean(), mismatchedFid.mean() + 0.2);
}

TEST_F(SamplerTest, RepeatedRefinementReachesStableFidelity)
{
    // Paper §A.6: caching refined images must not degrade future
    // generations. Chain refinements and check fidelity converges to a
    // healthy level instead of decaying to zero.
    auto prompt = makePrompt(300, rng_);
    auto img = sampler_.generate(sd35Large(), prompt, 0.0);
    for (int gen = 0; gen < 12; ++gen) {
        workload::Prompt next = prompt;
        next.id = 8000 + gen;
        next.visualConcept =
            jitterUnitVec(prompt.visualConcept, 0.1, rng_);
        img = sampler_.refine(sdxl(), next, img, 20, 0.0);
        prompt = next;
    }
    EXPECT_GT(img.fidelity, 0.75);
}

TEST_F(SamplerTest, RefinedImageMetadata)
{
    const auto base = makePrompt(400, rng_);
    const auto baseImg = sampler_.generate(sd35Large(), base, 0.0);
    auto query = makePrompt(401, rng_);
    const auto refined = sampler_.refine(sana(), query, baseImg, 15, 0.0);
    EXPECT_TRUE(refined.refined);
    EXPECT_EQ(refined.stepsRun, 35);
    EXPECT_EQ(refined.modelName, "SANA");
    EXPECT_EQ(refined.promptId, query.id);
    EXPECT_NE(refined.id, baseImg.id);
}

TEST_F(SamplerTest, ImageIdsAreUnique)
{
    const auto p1 = makePrompt(500, rng_);
    const auto p2 = makePrompt(501, rng_);
    const auto a = sampler_.generate(sd35Large(), p1, 0.0);
    const auto b = sampler_.generate(sd35Large(), p2, 0.0);
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(sampler_.imagesProduced(), 2u);
}

/**
 * Property sweep: for every k in the paper's K set, refinement quality
 * (alignment to the query) must increase with base similarity, and for
 * a fixed, related base, decrease with k.
 */
class RefinementPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RefinementPropertyTest, AlignmentMonotoneInBaseSimilarity)
{
    const int k = GetParam();
    Sampler sampler(77);
    Rng rng(k * 1000 + 3);
    RunningStat closeAlign, farAlign;
    for (int i = 0; i < 80; ++i) {
        workload::Prompt base;
        base.id = i;
        base.visualConcept = randomUnitVec(64, rng);
        base.lexicalStyle = randomUnitVec(64, rng);
        const auto baseImg = sampler.generate(sd35Large(), base, 0.0);

        workload::Prompt closeQ = base;
        closeQ.id = 10000 + i;
        closeQ.visualConcept =
            jitterUnitVec(base.visualConcept, 0.15, rng);
        workload::Prompt farQ = base;
        farQ.id = 20000 + i;
        farQ.visualConcept = jitterUnitVec(base.visualConcept, 0.9, rng);

        closeAlign.add(cosine(
            sampler.refine(sdxl(), closeQ, baseImg, k, 0.0).content,
            closeQ.visualConcept));
        farAlign.add(cosine(
            sampler.refine(sdxl(), farQ, baseImg, k, 0.0).content,
            farQ.visualConcept));
    }
    EXPECT_GT(closeAlign.mean(), farAlign.mean());
}

INSTANTIATE_TEST_SUITE_P(PaperKSet, RefinementPropertyTest,
                         ::testing::Values(5, 10, 15, 20, 25, 30));

} // namespace
} // namespace modm::diffusion

/**
 * @file
 * Scenario DSL tests: canonical fixpoint, digest stability, file:line
 * diagnostics on malformed input, workload equivalence against the
 * legacy bench helpers, scenario-vs-inline figure equivalence, knob
 * plumbing, and 1-vs-4-thread sweep determinism of scenario cells.
 *
 * MODM_SCENARIO_DIR (a compile definition) points at the checked-in
 * scenarios/ directory so the suite pins every shipped .scn file.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "bench/sweep.hh"
#include "src/cache/image_cache.hh"
#include "src/serving/k_decision.hh"
#include "src/serving/scenario_exec.hh"
#include "src/workload/scenario.hh"

namespace modm::workload {
namespace {

/** Parse from a string; returns the error ("" on success). */
std::string
parseText(const std::string &text, Scenario &out)
{
    std::istringstream in(text);
    return parseScenario(in, "test.scn", out);
}

Scenario
parseOk(const std::string &text)
{
    Scenario scenario;
    const auto err = parseText(text, scenario);
    EXPECT_EQ(err, "");
    return scenario;
}

const char kSteadyText[] = "scenario steady\n"
                           "warm 50\n"
                           "requests 80\n"
                           "rate 10\n"
                           "cache 500\n"
                           "\n"
                           "cell \"modm\"\n"
                           "cell \"vanilla\" system=vanilla\n";

TEST(ScenarioParse, FixpointOnCanonicalText)
{
    const auto scenario = parseOk(kSteadyText);
    const auto canonical = canonicalScenario(scenario);
    const auto reparsed = parseOk(canonical);
    EXPECT_EQ(canonicalScenario(reparsed), canonical);
    EXPECT_EQ(scenarioDigest(reparsed), scenarioDigest(scenario));
}

TEST(ScenarioParse, DigestIgnoresFormattingAndComments)
{
    const auto a = parseOk(kSteadyText);
    const auto b = parseOk("scenario steady\n"
                           "# a comment\n"
                           "rate   10\n"
                           "cache 500   # trailing comment\n"
                           "requests 80\n"
                           "warm 50\n"
                           "\n"
                           "cell \"modm\"\n"
                           "cell \"vanilla\" system=vanilla\n");
    EXPECT_EQ(scenarioDigest(a), scenarioDigest(b));
}

TEST(ScenarioParse, DigestChangesWithMeaning)
{
    const auto a = parseOk(kSteadyText);
    auto changed = std::string(kSteadyText);
    changed.replace(changed.find("rate 10"), 7, "rate 11");
    const auto b = parseOk(changed);
    EXPECT_NE(scenarioDigest(a), scenarioDigest(b));
}

TEST(ScenarioParse, OpsRoundTripCanonically)
{
    const auto scenario = parseOk(
        "scenario shaped\n"
        "warm 10\n"
        "duration 3600\n"
        "rate 12\n"
        "nodes 3\n"
        "workers 6\n"
        "\n"
        "at 0 diurnal base 12 amp 6 period 900 for 1800 steps 12\n"
        "at 1800 ramp to 30 over 600 steps 6\n"
        "at 1900 flash x2.5 for 120\n"
        "at 2400 drift to seed 777 over 600\n"
        "at 2400 region 1 weight 0.25\n"
        "at 2500 kill 1\n"
        "at 2600 set mode quality\n"
        "at 2700 set cache 2000\n"
        "at 3000 rejoin 1\n");
    ASSERT_EQ(scenario.ops.size(), 9u);
    EXPECT_TRUE(scenario.mixesSources());
    EXPECT_TRUE(scenario.hasFaults());
    EXPECT_TRUE(scenario.hasKnobs());
    const auto canonical = canonicalScenario(scenario);
    EXPECT_EQ(canonicalScenario(parseOk(canonical)), canonical);

    const auto lines = scenarioOpLines(scenario);
    ASSERT_EQ(lines.size(), 9u);
    EXPECT_EQ(lines[5], "at 2500 kill 1");
    EXPECT_EQ(lines[6], "at 2600 set mode quality");
    EXPECT_EQ(lines[7], "at 2700 set cache 2000");
}

TEST(ScenarioParse, DiagnosticsCarryFileAndLine)
{
    Scenario out;

    // Unknown op verb, with the failing line number.
    EXPECT_EQ(parseText("scenario s\nrequests 10\nrate 5\n"
                        "at 10 explode 1\n",
                        out),
              "test.scn:4: unknown op 'explode'");

    // Out-of-order timestamps.
    const auto err = parseText("scenario s\nrequests 10\nrate 5\n"
                               "at 20 rate 6\nat 10 rate 7\n",
                               out);
    EXPECT_NE(err.find("test.scn:5:"), std::string::npos) << err;
    EXPECT_NE(err.find("time-ordered"), std::string::npos) << err;

    // Bad knob.
    const auto knobErr = parseText("scenario s\nrequests 10\nrate 5\n"
                                   "at 10 set turbo 9\n",
                                   out);
    EXPECT_NE(knobErr.find("test.scn:4:"), std::string::npos) << knobErr;
    EXPECT_NE(knobErr.find("unknown knob 'turbo'"), std::string::npos)
        << knobErr;
}

TEST(ScenarioParse, RejectsMalformedHeaders)
{
    Scenario out;
    EXPECT_NE(parseText("requests 10\n", out).find("first directive"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\nrequests 20\n", out)
                  .find("duplicate directive"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\nduration 5\n", out)
                  .find("exactly one of requests/duration"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\ngpu h100\n", out)
                  .find("unknown gpu"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\ntitle \"open\n", out)
                  .find("unterminated quote"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\n", out).find("requests or duration"),
              std::string::npos);
}

TEST(ScenarioParse, RejectsInvalidOps)
{
    Scenario out;
    // Rate shaping in a batch scenario.
    EXPECT_NE(parseText("scenario s\nrequests 10\nat 0 rate 5\n", out)
                  .find("batch"),
              std::string::npos);
    // Diurnal amplitude must stay below the base.
    EXPECT_NE(parseText("scenario s\nduration 100\nrate 5\n"
                        "at 0 diurnal base 5 amp 6 period 50 for 100 "
                        "steps 4\n",
                        out)
                  .find("amp must stay below base"),
              std::string::npos);
    // Region weight out of range.
    EXPECT_NE(parseText("scenario s\nrequests 10\nrate 5\n"
                        "at 0 region 1 weight 1.5\n",
                        out)
                  .find("weight"),
              std::string::npos);
    // Killing the only admitting node.
    EXPECT_NE(parseText("scenario s\nrequests 10\nrate 5\n"
                        "at 10 kill 0\n",
                        out)
                  .find("admitting"),
              std::string::npos);
    // Replicas knob without replicated partitioning.
    EXPECT_NE(parseText("scenario s\nrequests 10\nrate 5\nnodes 2\n"
                        "workers 4\nat 10 set replicas 2\n",
                        out)
                  .find("replicated"),
              std::string::npos);
    // MoDM cell without a small model.
    EXPECT_NE(parseText("scenario s\nrequests 10\nsmall none\n", out)
                  .find("non-empty small"),
              std::string::npos);
}

TEST(ScenarioParseDeath, LoadOrDieReportsFileAndLine)
{
    std::istringstream in("scenario s\nrequests 10\nat 1 explode 2\n");
    EXPECT_DEATH(parseScenarioOrDie(in, "bad.scn"),
                 "bad.scn:3: unknown op");
}

/** Every checked-in scenario file, relative to MODM_SCENARIO_DIR. */
const char *const kCheckedInScenarios[] = {
    "fig06_hit_rate.scn",   "fig18_energy.scn", "steady_state.scn",
    "flash_crowd.scn",      "diurnal.scn",      "topic_drift.scn",
    "regional_skew.scn",    "failover_killmid.scn",
};

std::string
scenarioPath(const std::string &name)
{
    return std::string(MODM_SCENARIO_DIR) + "/" + name;
}

TEST(ScenarioFiles, EveryCheckedInScenarioIsAFixpoint)
{
    for (const char *name : kCheckedInScenarios) {
        SCOPED_TRACE(name);
        const auto scenario = loadScenarioFile(scenarioPath(name));
        const auto canonical = canonicalScenario(scenario);
        const auto reparsed = parseOk(canonical);
        EXPECT_EQ(canonicalScenario(reparsed), canonical);
        EXPECT_EQ(scenarioDigest(reparsed), scenarioDigest(scenario));
    }
}

TEST(ScenarioFiles, PortedFigureDigestsArePinned)
{
    // Frozen digests of the two figure ports. A change here means the
    // scenario's meaning changed — the matching golden (and the legacy
    // byte-identity claim) must be revisited, not just re-pinned.
    EXPECT_EQ(scenarioDigest(
                  loadScenarioFile(scenarioPath("fig06_hit_rate.scn"))),
              0xea14f86034447e74ULL);
    EXPECT_EQ(scenarioDigest(
                  loadScenarioFile(scenarioPath("fig18_energy.scn"))),
              0xf09cbd0285e74bccULL);
}

TEST(ScenarioWorkloadEquivalence, BatchMatchesLegacyBatchBundle)
{
    const auto scenario = parseOk("scenario batch\n"
                                  "warm 120\n"
                                  "requests 150\n");
    const auto built = buildScenarioWorkload(scenario);
    const auto legacy =
        bench::batchBundle(bench::Dataset::DiffusionDB, 120, 150);

    ASSERT_EQ(built.warm.size(), legacy.warm.size());
    ASSERT_EQ(built.trace.size(), legacy.trace.size());
    for (std::size_t i = 0; i < built.trace.size(); ++i) {
        EXPECT_EQ(built.trace[i].arrival, legacy.trace[i].arrival);
        EXPECT_EQ(built.trace[i].prompt.id, legacy.trace[i].prompt.id);
        EXPECT_EQ(built.trace[i].prompt.text,
                  legacy.trace[i].prompt.text);
        EXPECT_EQ(built.trace[i].prompt.visualConcept,
                  legacy.trace[i].prompt.visualConcept);
    }
}

TEST(ScenarioWorkloadEquivalence, PoissonMatchesLegacyPoissonBundle)
{
    const auto scenario = parseOk("scenario poisson\n"
                                  "warm 40\n"
                                  "requests 120\n"
                                  "rate 10\n");
    const auto built = buildScenarioWorkload(scenario);
    const auto legacy =
        bench::poissonBundle(bench::Dataset::DiffusionDB, 40, 120, 10.0);

    ASSERT_EQ(built.trace.size(), legacy.trace.size());
    for (std::size_t i = 0; i < built.trace.size(); ++i) {
        EXPECT_EQ(built.trace[i].arrival, legacy.trace[i].arrival);
        EXPECT_EQ(built.trace[i].prompt.id, legacy.trace[i].prompt.id);
        EXPECT_EQ(built.trace[i].prompt.text,
                  legacy.trace[i].prompt.text);
    }
}

TEST(ScenarioWorkloadEquivalence, MjhqDatasetSelectsTheMjhqGenerator)
{
    const auto scenario = parseOk("scenario mjhq\n"
                                  "dataset mjhq\n"
                                  "requests 50\n");
    const auto built = buildScenarioWorkload(scenario);
    const auto legacy =
        bench::batchBundle(bench::Dataset::MJHQ, 0, 50);
    ASSERT_EQ(built.trace.size(), legacy.trace.size());
    for (std::size_t i = 0; i < built.trace.size(); ++i)
        EXPECT_EQ(built.trace[i].prompt.text,
                  legacy.trace[i].prompt.text);
}

TEST(ScenarioEquivalence, ServingCellMatchesLegacyPresetRun)
{
    // A scenario cell that names the MoDM preset reproduces the
    // hard-coded bench path bit for bit (digest equality).
    const auto scenario = parseOk("scenario modm_small\n"
                                  "warm 150\n"
                                  "requests 150\n"
                                  "cache 1500\n");
    const auto cellResult =
        serving::runScenarioCell(scenario, scenario.cell(0));

    baselines::PresetParams params;
    params.cacheCapacity = 1500;
    const auto config =
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                        params);
    const auto legacy = bench::runSystem(
        config, bench::batchBundle(bench::Dataset::DiffusionDB, 150,
                                   150));

    EXPECT_EQ(serving::resultDigest(cellResult),
              serving::resultDigest(legacy));
}

TEST(ScenarioEquivalence, CacheStreamMatchesInlineFig06Loop)
{
    // Scaled-down Fig. 6: the scenario executor's streamed-cache loop
    // against a verbatim transcription of the legacy binary's.
    const auto scenario = parseOk("scenario fig06_small\n"
                                  "mode cache-stream\n"
                                  "requests 4000\n"
                                  "window 500\n"
                                  "cache 800\n"
                                  "report hit-curve\n");
    const auto curve =
        serving::runScenarioCacheStream(scenario, scenario.cell(0));

    auto gen = makeDiffusionDB(42);
    diffusion::Sampler sampler(7);
    cache::ImageCache cache(800, cache::EvictionPolicy::FIFO);
    embedding::TextEncoder text;
    serving::KDecision kd;
    std::vector<double> expected;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < 4000; ++i) {
        const auto p = gen->next();
        const auto te =
            text.encode(p.visualConcept, p.lexicalStyle, p.text);
        const auto r = cache.retrieve(te);
        diffusion::Image img;
        if (r.found && kd.isHit(r.similarity)) {
            ++hits;
            cache.recordHit(r.entryId, static_cast<double>(i));
            img = sampler.refine(diffusion::sdxl(), p,
                                 cache.entry(r.entryId).image,
                                 kd.decide(r.similarity),
                                 static_cast<double>(i));
        } else {
            img = sampler.generate(diffusion::sd35Large(), p,
                                   static_cast<double>(i));
        }
        cache.insert(img, static_cast<double>(i));
        if ((i + 1) % 500 == 0) {
            expected.push_back(static_cast<double>(hits) / 500);
            hits = 0;
        }
    }
    EXPECT_EQ(curve, expected);
}

TEST(ScenarioEquivalence, FaultOpsMatchHandBuiltFaultPlan)
{
    const auto scenario = parseOk("scenario fo\n"
                                  "warm 60\n"
                                  "requests 240\n"
                                  "rate 12\n"
                                  "workers 6\n"
                                  "nodes 3\n"
                                  "\n"
                                  "at 120 kill 1\n"
                                  "at 600 rejoin 1\n");
    const auto cellResult =
        serving::runScenarioCell(scenario, scenario.cell(0));

    baselines::PresetParams params;
    params.numWorkers = 6;
    auto config =
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                        params);
    config.cluster.numNodes = 3;
    config.faults.add(120.0, 1, serving::FaultKind::Kill)
        .add(600.0, 1, serving::FaultKind::Rejoin);
    const auto legacy = bench::runSystem(
        config, bench::poissonBundle(bench::Dataset::DiffusionDB, 60,
                                     240, 12.0));

    EXPECT_EQ(serving::resultDigest(cellResult),
              serving::resultDigest(legacy));
    EXPECT_TRUE(cellResult.failover.active);
}

TEST(ScenarioKnobs, CacheShrinkEvictsDownInPolicy)
{
    const auto scenario = parseOk("scenario shrink\n"
                                  "warm 400\n"
                                  "requests 100\n"
                                  "rate 10\n"
                                  "cache 1000\n"
                                  "\n"
                                  "at 1 set cache 200\n");
    const auto result =
        serving::runScenarioCell(scenario, scenario.cell(0));
    EXPECT_LE(result.cacheSize, 200u);
    EXPECT_GT(result.cacheSize, 0u);
}

TEST(ScenarioKnobs, ModeFlipChangesTheRunAndEmptyPlanIsANoOp)
{
    const char kBase[] = "scenario knobs\n"
                         "warm 100\n"
                         "requests 200\n"
                         "rate 12\n"
                         "cache 800\n";
    const auto plain = parseOk(kBase);
    const auto flipped =
        parseOk(std::string(kBase) + "\nat 60 set mode quality\n");

    const auto plainResult =
        serving::runScenarioCell(plain, plain.cell(0));
    const auto flippedResult =
        serving::runScenarioCell(flipped, flipped.cell(0));
    EXPECT_NE(serving::resultDigest(plainResult),
              serving::resultDigest(flippedResult));

    // An explicitly empty knob plan is byte-identical to no plan.
    auto config = serving::scenarioCellConfig(plain, plain.cell(0));
    ASSERT_TRUE(config.knobs.empty());
    const auto workload = buildScenarioWorkload(plain);
    serving::ServingSystem system(config);
    system.warmCache(workload.warm);
    const auto rerun = system.run(workload.trace);
    EXPECT_EQ(serving::resultDigest(rerun),
              serving::resultDigest(plainResult));
}

TEST(ScenarioKnobsDeath, ReplicasKnobValidatesAgainstTopology)
{
    serving::ServingConfig config;
    config.knobs.setReplicationFactor(10.0, 2);
    EXPECT_DEATH(serving::ServingSystem{config}, "[Rr]eplica");
}

TEST(ScenarioRetrieval, CompoundValueRoundTripsCanonically)
{
    // Header sugar `retrieval hnsw ef=64` canonicalizes to the comma
    // form, which reparses to the same scenario (fixpoint).
    const auto scenario = parseOk("scenario r\n"
                                  "requests 10\n"
                                  "retrieval hnsw ef=64\n");
    EXPECT_EQ(scenario.params.retrieval, ScenarioRetrieval::Hnsw);
    EXPECT_EQ(scenario.params.retrievalEf, 64u);
    EXPECT_EQ(scenario.params.retrievalNprobe, 0u);
    const auto canonical = canonicalScenario(scenario);
    EXPECT_NE(canonical.find("retrieval hnsw,ef=64\n"),
              std::string::npos)
        << canonical;
    EXPECT_EQ(canonicalScenario(parseOk(canonical)), canonical);

    // Cell override in the comma form; selecting a backend resets the
    // header's knobs, so `retrieval=flat` drops the inherited ef.
    const auto cells = parseOk("scenario r\n"
                               "requests 10\n"
                               "retrieval hnsw,ef=32\n"
                               "\n"
                               "cell \"pq\" retrieval=ivf-pq,nprobe=16\n"
                               "cell \"exact\" retrieval=flat\n");
    EXPECT_EQ(cells.cell(0).params.retrieval, ScenarioRetrieval::IvfPq);
    EXPECT_EQ(cells.cell(0).params.retrievalNprobe, 16u);
    EXPECT_EQ(cells.cell(0).params.retrievalEf, 0u);
    EXPECT_EQ(cells.cell(1).params.retrieval, ScenarioRetrieval::Flat);
    EXPECT_EQ(cells.cell(1).params.retrievalEf, 0u);
    const auto cellCanonical = canonicalScenario(cells);
    EXPECT_NE(cellCanonical.find("retrieval=ivf-pq,nprobe=16"),
              std::string::npos)
        << cellCanonical;
    EXPECT_EQ(canonicalScenario(parseOk(cellCanonical)), cellCanonical);

    // Knobs change the digest; the bare backend token does not gain a
    // suffix (pre-knob scenarios keep their digests, pinned above by
    // PortedFigureDigestsArePinned).
    const auto bare = parseOk("scenario r\nrequests 10\n"
                              "retrieval hnsw\n");
    EXPECT_NE(scenarioDigest(bare), scenarioDigest(scenario));
    EXPECT_NE(canonicalScenario(bare).find("retrieval hnsw\n"),
              std::string::npos);
}

TEST(ScenarioRetrieval, RejectsMalformedCompoundValues)
{
    Scenario out;
    EXPECT_NE(parseText("scenario s\nrequests 10\n"
                        "retrieval annoy\n",
                        out)
                  .find("unknown retrieval backend 'annoy'"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\n"
                        "retrieval ivf,ef=8\n",
                        out)
                  .find("ef requires the hnsw backend"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\n"
                        "retrieval hnsw,nprobe=8\n",
                        out)
                  .find("nprobe requires an ivf backend"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\n"
                        "retrieval hnsw,ef=0\n",
                        out)
                  .find("n >= 1"),
              std::string::npos);
    EXPECT_NE(parseText("scenario s\nrequests 10\n"
                        "retrieval hnsw,beamwidth=9\n",
                        out)
                  .find("unknown retrieval knob 'beamwidth'"),
              std::string::npos);
    const auto cellErr = parseText("scenario s\nrequests 10\n"
                                   "\ncell \"c\" retrieval=ivf-pq,ef=4\n",
                                   out);
    EXPECT_NE(cellErr.find("test.scn:4:"), std::string::npos) << cellErr;
    EXPECT_NE(cellErr.find("ef requires the hnsw backend"),
              std::string::npos)
        << cellErr;
}

TEST(ScenarioRetrieval, EfAndNprobeKnobOpsParseAndValidate)
{
    const auto scenario = parseOk("scenario k\n"
                                  "requests 10\nrate 5\n"
                                  "retrieval hnsw\n"
                                  "\n"
                                  "at 10 set ef 32\n");
    ASSERT_EQ(scenario.ops.size(), 1u);
    EXPECT_EQ(scenario.ops[0].knob, ScenarioKnob::Ef);
    EXPECT_EQ(scenario.ops[0].knobValue, 32.0);
    EXPECT_EQ(scenarioOpLines(scenario)[0], "at 10 set ef 32");
    const auto canonical = canonicalScenario(scenario);
    EXPECT_EQ(canonicalScenario(parseOk(canonical)), canonical);

    const auto pq = parseOk("scenario k\nrequests 10\nrate 5\n"
                            "retrieval ivf-pq\n"
                            "\nat 10 set nprobe 16\n");
    EXPECT_EQ(pq.ops[0].knob, ScenarioKnob::Nprobe);
    EXPECT_EQ(scenarioOpLines(pq)[0], "at 10 set nprobe 16");

    // Backend/knob mismatches surface as file:line diagnostics.
    Scenario out;
    const auto efErr = parseText("scenario s\nrequests 10\nrate 5\n"
                                 "at 10 set ef 32\n",
                                 out);
    EXPECT_NE(efErr.find("test.scn:4:"), std::string::npos) << efErr;
    EXPECT_NE(efErr.find("ef knob requires retrieval hnsw"),
              std::string::npos)
        << efErr;
    const auto npErr = parseText("scenario s\nrequests 10\nrate 5\n"
                                 "retrieval hnsw\n"
                                 "at 10 set nprobe 4\n",
                                 out);
    EXPECT_NE(npErr.find("nprobe knob requires an ivf"),
              std::string::npos)
        << npErr;
    // A single offending cell poisons the whole timeline.
    const auto cellErr = parseText("scenario s\nrequests 10\nrate 5\n"
                                   "retrieval hnsw\n"
                                   "at 10 set ef 32\n"
                                   "\ncell \"a\"\n"
                                   "cell \"b\" retrieval=flat\n",
                                   out);
    EXPECT_NE(cellErr.find("cell \"b\""), std::string::npos) << cellErr;
}

TEST(ScenarioRetrieval, CellRunsApproximateBackendsWithKnobs)
{
    // End-to-end lowering: the scenario's retrieval selection and ef
    // knob reach the serving run (backend tag + nonzero memory bytes
    // in the result), and a mid-run `set ef` changes the outcome of
    // an approximate-backend run deterministically.
    const char kBase[] = "scenario hnswrun\n"
                         "warm 200\n"
                         "requests 120\n"
                         "rate 30\n"
                         "cache 400\n"
                         "retrieval hnsw,ef=48\n";
    const auto scenario = parseOk(kBase);
    const auto result =
        serving::runScenarioCell(scenario, scenario.cell(0));
    EXPECT_EQ(result.retrievalBackend,
              embedding::RetrievalBackend::Hnsw);
    EXPECT_GT(result.retrievalMemoryBytes, 0u);

    const auto knobbed =
        parseOk(std::string(kBase) + "\nat 1 set ef 4\n");
    const auto knobbedResult =
        serving::runScenarioCell(knobbed, knobbed.cell(0));
    // ef=4 degrades retrieval vs ef=48; the digests must differ and
    // the degraded run cannot have better recall.
    EXPECT_NE(serving::resultDigest(result),
              serving::resultDigest(knobbedResult));
    EXPECT_LE(knobbedResult.retrievalRecallAt1,
              result.retrievalRecallAt1 + 1e-12);

    const auto pq = parseOk("scenario pqrun\n"
                            "warm 200\n"
                            "requests 80\n"
                            "cache 400\n"
                            "retrieval ivf-pq,nprobe=4\n");
    const auto pqResult = serving::runScenarioCell(pq, pq.cell(0));
    EXPECT_EQ(pqResult.retrievalBackend,
              embedding::RetrievalBackend::IvfPq);
    EXPECT_GT(pqResult.retrievalMemoryBytes, 0u);
}

TEST(ScenarioSweep, CellsAreDeterministicAcrossParallelism)
{
    const auto scenario = parseOk(kSteadyText);
    const auto runAll = [&](std::size_t parallelism) {
        std::vector<std::function<std::string()>> cells;
        for (std::size_t i = 0; i < scenario.cellCount(); ++i) {
            const auto cell = scenario.cell(i);
            cells.push_back([&scenario, cell] {
                return serving::resultDigest(
                    serving::runScenarioCell(scenario, cell));
            });
        }
        bench::SweepOptions options;
        options.parallelism = parallelism;
        options.progress = false;
        return bench::runCells<std::string>(cells, options);
    };
    const auto serial = runAll(1);
    const auto concurrent = runAll(4);
    EXPECT_EQ(serial, concurrent);
}

} // namespace
} // namespace modm::workload

/**
 * @file
 * Property tests for the concurrent sweep engine: a sweep executed
 * serially (parallelism=1) and concurrently (parallelism=N) must
 * produce bit-identical ServingResults for every cell — the
 * share-nothing guarantee that lets the bench suite fan experiments
 * out across cores without changing a single reported number.
 *
 * Also covers the persistent cell cache (sweep_cache.hh): hit/miss
 * semantics, salt invalidation, corrupted-entry recovery, bitwise
 * encode/decode round-trips, and the end-to-end property the CI
 * kernels job leans on — a warm run at any parallelism replays the
 * cold run's values byte for byte without recomputing a single cell.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "bench/sweep.hh"
#include "src/baselines/presets.hh"

namespace modm::bench {
namespace {

/**
 * Scoped MODM_SWEEP_* override so ambient env (e.g. a developer
 * exporting the knob the way the CI bench steps do) can't leak into
 * the assertions; prior values are restored on destruction. Pass
 * nullptr to assert the variable is absent within the scope.
 */
class ScopedSweepEnv
{
  public:
    explicit ScopedSweepEnv(const char *parallelism)
    {
        save("MODM_SWEEP_PARALLELISM", parallelism);
        save("MODM_SWEEP_PROGRESS", "0");
    }
    ~ScopedSweepEnv()
    {
        for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
            if (it->second.second)
                setenv(it->first.c_str(), it->second.first.c_str(), 1);
            else
                unsetenv(it->first.c_str());
        }
    }

    /** Override (or, with nullptr, clear) one more variable. */
    void set(const char *name, const char *value) { save(name, value); }

  private:
    void save(const char *name, const char *value)
    {
        const char *prev = std::getenv(name);
        saved_.emplace_back(
            name, std::make_pair(prev ? prev : "", prev != nullptr));
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    std::vector<std::pair<std::string, std::pair<std::string, bool>>>
        saved_;
};

/** A small but policy-diverse sweep: every SystemKind plus a monitor
 *  mode and admission variant, over both workload families. */
SweepSpec
makeSpec()
{
    baselines::PresetParams params;
    params.numWorkers = 2;
    params.cacheCapacity = 150;

    SweepSpec spec;
    spec.options.title = "property";
    const auto ddb = [] {
        return poissonBundle(Dataset::DiffusionDB, 120, 150, 12.0);
    };
    const auto mjhq = [] {
        return batchBundle(Dataset::MJHQ, 120, 150);
    };
    spec.add("vanilla", baselines::vanilla(diffusion::sd35Large(), params),
             ddb);
    spec.add("nirvana", baselines::nirvana(diffusion::sd35Large(), params),
             ddb);
    spec.add("pinecone",
             baselines::pinecone(diffusion::sd35Large(), params), mjhq);
    spec.add("modm",
             baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                             params),
             ddb);
    auto quality = baselines::modmMulti(
        diffusion::sd35Large(), {diffusion::sdxl(), diffusion::sana()},
        params);
    quality.mode = serving::MonitorMode::QualityOptimized;
    quality.keepOutputs = true;
    spec.add("modm-quality", quality, mjhq);
    auto cacheLarge = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sana(), params);
    cacheLarge.admission = serving::AdmissionPolicy::CacheLargeOnly;
    cacheLarge.retrievalParallelism = 3; // nested sharded retrieval
    spec.add("modm-cachelarge", cacheLarge, ddb);
    return spec;
}

TEST(Sweep, SerialAndConcurrentResultsAreBitIdentical)
{
    std::vector<std::string> serialDigests;
    {
        ScopedSweepEnv env("1");
        const auto results = runSweep(makeSpec());
        for (const auto &r : results)
            serialDigests.push_back(serving::resultDigest(r));
    }
    {
        ScopedSweepEnv env("4");
        const auto results = runSweep(makeSpec());
        ASSERT_EQ(results.size(), serialDigests.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(serving::resultDigest(results[i]),
                      serialDigests[i])
                << "cell " << i
                << " diverged between serial and concurrent execution";
        }
    }
    // Concurrent runs are also stable against each other.
    {
        ScopedSweepEnv env("3");
        const auto results = runSweep(makeSpec());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(serving::resultDigest(results[i]),
                      serialDigests[i]);
        }
    }
}

TEST(Sweep, ResultsComeBackInCellOrderDespiteSkewedCosts)
{
    ScopedSweepEnv env("8");
    std::vector<std::function<int()>> cells;
    for (int i = 0; i < 24; ++i) {
        cells.push_back([i] {
            // Earlier cells sleep longer, so completion order is
            // roughly the reverse of declaration order.
            std::this_thread::sleep_for(
                std::chrono::milliseconds((24 - i) % 7));
            return i;
        });
    }
    SweepOptions options;
    options.title = "ordering";
    const auto results = runCells(std::move(cells), options);
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(results[i], i);
}

TEST(Sweep, SplitRangeCoversExactlyOnce)
{
    for (const std::size_t total : {0u, 1u, 7u, 100u, 101u}) {
        for (const std::size_t parts : {1u, 3u, 8u, 200u}) {
            const auto ranges = splitRange(total, parts);
            std::size_t covered = 0;
            std::size_t prev = 0;
            for (const auto &[lo, hi] : ranges) {
                EXPECT_EQ(lo, prev);
                EXPECT_LT(lo, hi);
                covered += hi - lo;
                prev = hi;
            }
            EXPECT_EQ(covered, total);
        }
    }
}

/** Fresh per-test cache directory, removed again on destruction. */
class TempCacheDir
{
  public:
    explicit TempCacheDir(const char *name)
        : path_(::testing::TempDir() + name)
    {
        std::filesystem::remove_all(path_);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path_); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

void
expectBitEqual(const std::vector<double> &a, const std::vector<double> &b,
               const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
            << what << " value " << i << ": " << a[i] << " vs " << b[i];
    }
}

// Values a lossy text codec would mangle: signed zero, a denormal,
// the largest finite double, a repeating fraction.
const std::vector<double> kTrickyValues = {
    0.0,       -0.0, 1.0 / 3.0, 6.02214076e23, 5e-324,
    -1.75e308, 42.0,
};

TEST(SweepCache, HitMissAndSaltInvalidation)
{
    ScopedSweepEnv env("1");
    TempCacheDir dir("modm-sweep-cache-hit");
    env.set("MODM_SWEEP_CACHE", "1");
    env.set("MODM_SWEEP_CACHE_DIR", dir.path().c_str());
    env.set("MODM_SWEEP_CACHE_SALT", "saltA");

    int computes = 0;
    const auto compute = [&computes] {
        ++computes;
        return kTrickyValues;
    };
    const auto cold =
        cachedCell("cell/a", kTrickyValues.size(), compute);
    EXPECT_EQ(computes, 1);
    expectBitEqual(cold, kTrickyValues, "cold");

    // Same key: served from disk, bit for bit.
    const auto warm =
        cachedCell("cell/a", kTrickyValues.size(), compute);
    EXPECT_EQ(computes, 1);
    expectBitEqual(warm, kTrickyValues, "warm");

    // A different key is a different cell.
    cachedCell("cell/b", kTrickyValues.size(), compute);
    EXPECT_EQ(computes, 2);

    // A new salt (i.e. a rebuilt binary) invalidates everything ...
    env.set("MODM_SWEEP_CACHE_SALT", "saltB");
    cachedCell("cell/a", kTrickyValues.size(), compute);
    EXPECT_EQ(computes, 3);
    // ... while the old salt's entries remain intact beside it.
    env.set("MODM_SWEEP_CACHE_SALT", "saltA");
    cachedCell("cell/a", kTrickyValues.size(), compute);
    EXPECT_EQ(computes, 3);
}

TEST(SweepCache, OffByDefaultRecomputesAndWritesNothing)
{
    ScopedSweepEnv env("1");
    TempCacheDir dir("modm-sweep-cache-off");
    env.set("MODM_SWEEP_CACHE", nullptr); // determinism CI's default
    env.set("MODM_SWEEP_CACHE_DIR", dir.path().c_str());
    env.set("MODM_SWEEP_CACHE_SALT", "salt");

    int computes = 0;
    const auto compute = [&computes] {
        ++computes;
        return std::vector<double>{1.0, 2.0};
    };
    cachedCell("cell/off", 2, compute);
    cachedCell("cell/off", 2, compute);
    EXPECT_EQ(computes, 2);
    EXPECT_FALSE(std::filesystem::exists(dir.path()));
}

TEST(SweepCache, CorruptedEntriesReadAsMissesAndSelfHeal)
{
    ScopedSweepEnv env("1");
    TempCacheDir dir("modm-sweep-cache-corrupt");
    env.set("MODM_SWEEP_CACHE", "1");
    env.set("MODM_SWEEP_CACHE_DIR", dir.path().c_str());
    env.set("MODM_SWEEP_CACHE_SALT", "salt");

    int computes = 0;
    const auto compute = [&computes] {
        ++computes;
        return std::vector<double>{3.0, 4.0, 5.0};
    };
    const auto overwrite = [](const std::string &path,
                              const std::string &text) {
        FILE *out = std::fopen(path.c_str(), "wb");
        ASSERT_NE(out, nullptr);
        std::fwrite(text.data(), 1, text.size(), out);
        std::fclose(out);
    };

    cachedCell("cell/corrupt", 3, compute);
    EXPECT_EQ(computes, 1);
    const std::string path = sweepCachePath("cell/corrupt");
    ASSERT_TRUE(std::filesystem::exists(path));

    // Garbage payload under a valid header: recompute and heal.
    overwrite(path, "modm-sweep-cache v1\nsalt\ncell/corrupt\nnope\n");
    cachedCell("cell/corrupt", 3, compute);
    EXPECT_EQ(computes, 2);
    cachedCell("cell/corrupt", 3, compute);
    EXPECT_EQ(computes, 2); // healed: warm again

    // Truncated mid-header: recompute.
    overwrite(path, "modm-sw");
    cachedCell("cell/corrupt", 3, compute);
    EXPECT_EQ(computes, 3);

    // Valid doubles but the wrong count (a stale cell shape): miss.
    overwrite(path,
              "modm-sweep-cache v1\nsalt\ncell/corrupt\n0x1p+0\n");
    cachedCell("cell/corrupt", 3, compute);
    EXPECT_EQ(computes, 4);
}

TEST(SweepCache, EncodeDecodeRoundTripsBitwise)
{
    const std::string payload = encodeDoubles(kTrickyValues);
    std::vector<double> decoded;
    ASSERT_TRUE(decodeDoubles(payload, decoded));
    expectBitEqual(decoded, kTrickyValues, "round-trip");

    EXPECT_FALSE(decodeDoubles("", decoded));
    EXPECT_FALSE(decodeDoubles("0x1p+0 garbage", decoded));
}

TEST(SweepCache, WarmRunsReplayColdValuesAtAnyParallelism)
{
    ScopedSweepEnv env("1");
    TempCacheDir dir("modm-sweep-cache-warm");
    env.set("MODM_SWEEP_CACHE", "1");
    env.set("MODM_SWEEP_CACHE_DIR", dir.path().c_str());
    env.set("MODM_SWEEP_CACHE_SALT", "salt");

    // Each cell's second column is a per-process call counter — a
    // stand-in for a wall-clock measurement that would differ on
    // recomputation. A warm run must replay the COLD counter values.
    std::atomic<int> computes{0};
    const auto makeCells = [&computes] {
        std::vector<std::function<std::vector<double>()>> cells;
        for (int i = 0; i < 16; ++i) {
            cells.push_back([&computes, i] {
                return cachedCell(
                    "warm/cell" + std::to_string(i), 2, [&computes, i] {
                        const int call = ++computes;
                        return std::vector<double>{
                            static_cast<double>(i) * 1.5,
                            static_cast<double>(call)};
                    });
            });
        }
        return cells;
    };
    SweepOptions options;
    options.title = "sweep-cache";

    const auto cold = runCells(makeCells(), options);
    EXPECT_EQ(computes.load(), 16);
    {
        ScopedSweepEnv concurrent("4");
        const auto warm = runCells(makeCells(), options);
        EXPECT_EQ(computes.load(), 16) << "warm run recomputed a cell";
        ASSERT_EQ(warm.size(), cold.size());
        for (std::size_t i = 0; i < warm.size(); ++i)
            expectBitEqual(warm[i], cold[i], "warm vs cold cell");
    }
}

TEST(Sweep, EnvOverridesOptions)
{
    {
        ScopedSweepEnv env("1");
        SweepOptions options;
        options.parallelism = 16;
        EXPECT_EQ(resolveSweepParallelism(options), 1u);
        EXPECT_FALSE(resolveSweepProgress(options));
    }
    {
        // Env value 0 means "match the pool", even when the binary set
        // its own default.
        ScopedSweepEnv env("0");
        SweepOptions options;
        options.parallelism = 1;
        EXPECT_EQ(resolveSweepParallelism(options),
                  ThreadPool::global().concurrency());
    }
    {
        // No env: the options value wins.
        ScopedSweepEnv env(nullptr);
        SweepOptions options;
        options.parallelism = 5;
        EXPECT_EQ(resolveSweepParallelism(options), 5u);
    }
}

} // namespace
} // namespace modm::bench

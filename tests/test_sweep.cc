/**
 * @file
 * Property tests for the concurrent sweep engine: a sweep executed
 * serially (parallelism=1) and concurrently (parallelism=N) must
 * produce bit-identical ServingResults for every cell — the
 * share-nothing guarantee that lets the bench suite fan experiments
 * out across cores without changing a single reported number.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench/sweep.hh"
#include "src/baselines/presets.hh"

namespace modm::bench {
namespace {

/**
 * Scoped MODM_SWEEP_* override so ambient env (e.g. a developer
 * exporting the knob the way the CI bench steps do) can't leak into
 * the assertions; prior values are restored on destruction. Pass
 * nullptr to assert the variable is absent within the scope.
 */
class ScopedSweepEnv
{
  public:
    explicit ScopedSweepEnv(const char *parallelism)
    {
        save("MODM_SWEEP_PARALLELISM", parallelism);
        save("MODM_SWEEP_PROGRESS", "0");
    }
    ~ScopedSweepEnv()
    {
        for (auto it = saved_.rbegin(); it != saved_.rend(); ++it) {
            if (it->second.second)
                setenv(it->first.c_str(), it->second.first.c_str(), 1);
            else
                unsetenv(it->first.c_str());
        }
    }

  private:
    void save(const char *name, const char *value)
    {
        const char *prev = std::getenv(name);
        saved_.emplace_back(
            name, std::make_pair(prev ? prev : "", prev != nullptr));
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }

    std::vector<std::pair<std::string, std::pair<std::string, bool>>>
        saved_;
};

/** A small but policy-diverse sweep: every SystemKind plus a monitor
 *  mode and admission variant, over both workload families. */
SweepSpec
makeSpec()
{
    baselines::PresetParams params;
    params.numWorkers = 2;
    params.cacheCapacity = 150;

    SweepSpec spec;
    spec.options.title = "property";
    const auto ddb = [] {
        return poissonBundle(Dataset::DiffusionDB, 120, 150, 12.0);
    };
    const auto mjhq = [] {
        return batchBundle(Dataset::MJHQ, 120, 150);
    };
    spec.add("vanilla", baselines::vanilla(diffusion::sd35Large(), params),
             ddb);
    spec.add("nirvana", baselines::nirvana(diffusion::sd35Large(), params),
             ddb);
    spec.add("pinecone",
             baselines::pinecone(diffusion::sd35Large(), params), mjhq);
    spec.add("modm",
             baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                             params),
             ddb);
    auto quality = baselines::modmMulti(
        diffusion::sd35Large(), {diffusion::sdxl(), diffusion::sana()},
        params);
    quality.mode = serving::MonitorMode::QualityOptimized;
    quality.keepOutputs = true;
    spec.add("modm-quality", quality, mjhq);
    auto cacheLarge = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sana(), params);
    cacheLarge.admission = serving::AdmissionPolicy::CacheLargeOnly;
    cacheLarge.retrievalParallelism = 3; // nested sharded retrieval
    spec.add("modm-cachelarge", cacheLarge, ddb);
    return spec;
}

TEST(Sweep, SerialAndConcurrentResultsAreBitIdentical)
{
    std::vector<std::string> serialDigests;
    {
        ScopedSweepEnv env("1");
        const auto results = runSweep(makeSpec());
        for (const auto &r : results)
            serialDigests.push_back(serving::resultDigest(r));
    }
    {
        ScopedSweepEnv env("4");
        const auto results = runSweep(makeSpec());
        ASSERT_EQ(results.size(), serialDigests.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(serving::resultDigest(results[i]),
                      serialDigests[i])
                << "cell " << i
                << " diverged between serial and concurrent execution";
        }
    }
    // Concurrent runs are also stable against each other.
    {
        ScopedSweepEnv env("3");
        const auto results = runSweep(makeSpec());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(serving::resultDigest(results[i]),
                      serialDigests[i]);
        }
    }
}

TEST(Sweep, ResultsComeBackInCellOrderDespiteSkewedCosts)
{
    ScopedSweepEnv env("8");
    std::vector<std::function<int()>> cells;
    for (int i = 0; i < 24; ++i) {
        cells.push_back([i] {
            // Earlier cells sleep longer, so completion order is
            // roughly the reverse of declaration order.
            std::this_thread::sleep_for(
                std::chrono::milliseconds((24 - i) % 7));
            return i;
        });
    }
    SweepOptions options;
    options.title = "ordering";
    const auto results = runCells(std::move(cells), options);
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(results[i], i);
}

TEST(Sweep, SplitRangeCoversExactlyOnce)
{
    for (const std::size_t total : {0u, 1u, 7u, 100u, 101u}) {
        for (const std::size_t parts : {1u, 3u, 8u, 200u}) {
            const auto ranges = splitRange(total, parts);
            std::size_t covered = 0;
            std::size_t prev = 0;
            for (const auto &[lo, hi] : ranges) {
                EXPECT_EQ(lo, prev);
                EXPECT_LT(lo, hi);
                covered += hi - lo;
                prev = hi;
            }
            EXPECT_EQ(covered, total);
        }
    }
}

TEST(Sweep, EnvOverridesOptions)
{
    {
        ScopedSweepEnv env("1");
        SweepOptions options;
        options.parallelism = 16;
        EXPECT_EQ(resolveSweepParallelism(options), 1u);
        EXPECT_FALSE(resolveSweepProgress(options));
    }
    {
        // Env value 0 means "match the pool", even when the binary set
        // its own default.
        ScopedSweepEnv env("0");
        SweepOptions options;
        options.parallelism = 1;
        EXPECT_EQ(resolveSweepParallelism(options),
                  ThreadPool::global().concurrency());
    }
    {
        // No env: the options value wins.
        ScopedSweepEnv env(nullptr);
        SweepOptions options;
        options.parallelism = 5;
        EXPECT_EQ(resolveSweepParallelism(options), 5u);
    }
}

} // namespace
} // namespace modm::bench

/**
 * @file
 * Unit tests for trace serialization: round-trip exactness (including
 * quoted text with commas/quotes) and rejection of malformed input.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/workload/trace_io.hh"

namespace modm::workload {
namespace {

TEST(TraceIo, RoundTripPreservesEverything)
{
    auto gen = makeDiffusionDB(42);
    PoissonArrivals arrivals(10.0);
    Rng rng(7);
    const auto original = buildTrace(*gen, arrivals, 100, rng);

    std::stringstream buffer;
    saveTrace(original, buffer);
    const auto loaded = loadTrace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const auto &a = original[i];
        const auto &b = loaded[i];
        EXPECT_NEAR(a.arrival, b.arrival, 1e-6);
        EXPECT_EQ(a.prompt.id, b.prompt.id);
        EXPECT_EQ(a.prompt.topicId, b.prompt.topicId);
        EXPECT_EQ(a.prompt.userId, b.prompt.userId);
        EXPECT_EQ(a.prompt.sessionId, b.prompt.sessionId);
        EXPECT_EQ(a.prompt.text, b.prompt.text);
        ASSERT_EQ(a.prompt.visualConcept.size(),
                  b.prompt.visualConcept.size());
        for (std::size_t d = 0; d < a.prompt.visualConcept.size(); ++d)
            EXPECT_NEAR(a.prompt.visualConcept[d],
                        b.prompt.visualConcept[d], 1e-6);
    }
}

TEST(TraceIo, QuotedTextWithCommasAndQuotes)
{
    Trace trace(1);
    trace[0].arrival = 1.5;
    trace[0].prompt.id = 7;
    trace[0].prompt.text = "a \"red\" dragon, highly detailed";
    trace[0].prompt.visualConcept = {0.5f, -0.5f};
    trace[0].prompt.lexicalStyle = {1.0f, 0.0f};

    std::stringstream buffer;
    saveTrace(trace, buffer);
    const auto loaded = loadTrace(buffer);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].prompt.text, "a \"red\" dragon, highly detailed");
}

TEST(TraceIoDeath, RejectsForeignCsv)
{
    std::stringstream buffer("time,value\n1,2\n");
    EXPECT_DEATH(loadTrace(buffer), "bad header");
}

TEST(TraceIoDeath, RejectsTruncatedRow)
{
    std::stringstream buffer;
    buffer << "arrival,prompt_id,topic_id,user_id,session_id,text,"
              "visual,lexical\n1.0,2,3\n";
    EXPECT_DEATH(loadTrace(buffer), "malformed trace row");
}

} // namespace
} // namespace modm::workload

/**
 * @file
 * Unit tests for trace serialization: round-trip exactness (including
 * quoted text with commas/quotes), annotated traces carrying scenario
 * event timelines (faults, mid-trace knob changes), and rejection of
 * malformed input.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/workload/scenario.hh"
#include "src/workload/trace_io.hh"

namespace modm::workload {
namespace {

TEST(TraceIo, RoundTripPreservesEverything)
{
    auto gen = makeDiffusionDB(42);
    PoissonArrivals arrivals(10.0);
    Rng rng(7);
    const auto original = buildTrace(*gen, arrivals, 100, rng);

    std::stringstream buffer;
    saveTrace(original, buffer);
    const auto loaded = loadTrace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        const auto &a = original[i];
        const auto &b = loaded[i];
        EXPECT_NEAR(a.arrival, b.arrival, 1e-6);
        EXPECT_EQ(a.prompt.id, b.prompt.id);
        EXPECT_EQ(a.prompt.topicId, b.prompt.topicId);
        EXPECT_EQ(a.prompt.userId, b.prompt.userId);
        EXPECT_EQ(a.prompt.sessionId, b.prompt.sessionId);
        EXPECT_EQ(a.prompt.text, b.prompt.text);
        ASSERT_EQ(a.prompt.visualConcept.size(),
                  b.prompt.visualConcept.size());
        for (std::size_t d = 0; d < a.prompt.visualConcept.size(); ++d)
            EXPECT_NEAR(a.prompt.visualConcept[d],
                        b.prompt.visualConcept[d], 1e-6);
    }
}

TEST(TraceIo, QuotedTextWithCommasAndQuotes)
{
    Trace trace(1);
    trace[0].arrival = 1.5;
    trace[0].prompt.id = 7;
    trace[0].prompt.text = "a \"red\" dragon, highly detailed";
    trace[0].prompt.visualConcept = {0.5f, -0.5f};
    trace[0].prompt.lexicalStyle = {1.0f, 0.0f};

    std::stringstream buffer;
    saveTrace(trace, buffer);
    const auto loaded = loadTrace(buffer);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].prompt.text, "a \"red\" dragon, highly detailed");
}

TEST(TraceIo, AnnotatedRoundTripCarriesFaultAndKnobEvents)
{
    // A scenario with scripted faults and a mid-trace knob change,
    // frozen as an annotated trace: the rows round-trip exactly and
    // the event timeline survives in canonical op spelling.
    std::istringstream scn("scenario frozen\n"
                           "warm 0\n"
                           "requests 40\n"
                           "rate 12\n"
                           "workers 6\n"
                           "nodes 3\n"
                           "\n"
                           "at 60 kill 1\n"
                           "at 90 set cache 5000\n"
                           "at 240 rejoin 1\n");
    const auto scenario = parseScenarioOrDie(scn, "frozen.scn");

    AnnotatedTrace annotated;
    annotated.trace = buildScenarioWorkload(scenario).trace;
    annotated.events = scenarioOpLines(scenario);
    ASSERT_EQ(annotated.events.size(), 3u);

    std::stringstream buffer;
    saveAnnotatedTrace(annotated, buffer);
    const auto loaded = loadAnnotatedTrace(buffer);

    EXPECT_EQ(loaded.events,
              (std::vector<std::string>{"at 60 kill 1",
                                        "at 90 set cache 5000",
                                        "at 240 rejoin 1"}));
    ASSERT_EQ(loaded.trace.size(), annotated.trace.size());
    for (std::size_t i = 0; i < annotated.trace.size(); ++i) {
        EXPECT_NEAR(loaded.trace[i].arrival,
                    annotated.trace[i].arrival, 1e-6);
        EXPECT_EQ(loaded.trace[i].prompt.id,
                  annotated.trace[i].prompt.id);
        EXPECT_EQ(loaded.trace[i].prompt.text,
                  annotated.trace[i].prompt.text);
    }
}

TEST(TraceIo, AnnotatedTraceLoadsAsPlainTrace)
{
    AnnotatedTrace annotated;
    annotated.events = {"at 10 drain 2", "at 20 set mode quality"};
    Request request;
    request.arrival = 2.5;
    request.prompt.id = 11;
    request.prompt.text = "plain replay";
    request.prompt.visualConcept = {0.25f};
    request.prompt.lexicalStyle = {0.75f};
    annotated.trace.push_back(request);

    std::stringstream buffer;
    saveAnnotatedTrace(annotated, buffer);
    const auto plain = loadTrace(buffer);
    ASSERT_EQ(plain.size(), 1u);
    EXPECT_EQ(plain[0].prompt.text, "plain replay");
}

TEST(TraceIo, UnannotatedTraceLoadsWithEmptyEventList)
{
    Trace trace(1);
    trace[0].prompt.text = "no events";
    std::stringstream buffer;
    saveTrace(trace, buffer);
    const auto loaded = loadAnnotatedTrace(buffer);
    EXPECT_TRUE(loaded.events.empty());
    ASSERT_EQ(loaded.trace.size(), 1u);
    EXPECT_EQ(loaded.trace[0].prompt.text, "no events");
}

TEST(TraceIoDeath, RejectsEventAnnotationAfterRows)
{
    std::stringstream buffer;
    buffer << "arrival,prompt_id,topic_id,user_id,session_id,text,"
              "visual,lexical\n"
              "1.0,2,3,4,5,\"x\",0.5,0.5\n"
              "#@ at 10 kill 1\n";
    EXPECT_DEATH(loadAnnotatedTrace(buffer),
                 "annotation after the first row");
}

TEST(TraceIoDeath, RejectsForeignCsv)
{
    std::stringstream buffer("time,value\n1,2\n");
    EXPECT_DEATH(loadTrace(buffer), "bad header");
}

TEST(TraceIoDeath, RejectsTruncatedRow)
{
    std::stringstream buffer;
    buffer << "arrival,prompt_id,topic_id,user_id,session_id,text,"
              "visual,lexical\n1.0,2,3\n";
    EXPECT_DEATH(loadTrace(buffer), "malformed trace row");
}

} // namespace
} // namespace modm::workload

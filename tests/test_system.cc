/**
 * @file
 * Integration tests: the full serving system (scheduler + monitor +
 * cluster on the DES) run end-to-end for MoDM and every baseline, plus
 * cross-module invariants (conservation of requests, causality of
 * timestamps, cache admission policies, determinism).
 */

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/presets.hh"
#include "src/serving/system.hh"
#include "src/workload/trace.hh"

namespace modm::serving {
namespace {

struct TraceBundle
{
    std::vector<workload::Prompt> warm;
    workload::Trace trace;
};

TraceBundle
makeBundle(std::size_t warm_count, std::size_t trace_count,
           double rate_per_min, std::uint64_t seed = 42)
{
    TraceBundle bundle;
    auto gen = workload::makeDiffusionDB(seed);
    for (std::size_t i = 0; i < warm_count; ++i)
        bundle.warm.push_back(gen->next());
    workload::PoissonArrivals arrivals(rate_per_min);
    Rng rng(seed);
    bundle.trace =
        workload::buildTrace(*gen, arrivals, trace_count, rng);
    return bundle;
}

baselines::PresetParams
smallParams()
{
    baselines::PresetParams params;
    params.numWorkers = 4;
    params.cacheCapacity = 600;
    params.keepOutputs = true;
    return params;
}

void
checkInvariants(const ServingResult &result, std::size_t expected)
{
    EXPECT_EQ(result.metrics.count(), expected);
    std::set<std::uint64_t> served;
    for (const auto &r : result.metrics.records()) {
        EXPECT_LE(r.arrival, r.start + 1e-9);
        EXPECT_LE(r.start, r.finish + 1e-9);
        served.insert(r.promptId);
    }
    // Every request served exactly once.
    EXPECT_EQ(served.size(), expected);
}

TEST(System, VanillaServesEverythingOnLargeModel)
{
    auto bundle = makeBundle(0, 120, 3.0);
    ServingSystem system(
        baselines::vanilla(diffusion::sd35Large(), smallParams()));
    const auto result = system.run(bundle.trace);
    checkInvariants(result, 120);
    EXPECT_DOUBLE_EQ(result.hitRate, 0.0);
    for (const auto &r : result.metrics.records()) {
        EXPECT_EQ(r.servedBy, "SD3.5L");
        EXPECT_EQ(r.kind, ServeKind::FullGeneration);
    }
}

TEST(System, MoDMServesHitsWithSmallModel)
{
    auto bundle = makeBundle(600, 300, 6.0);
    ServingSystem system(
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                        smallParams()));
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    checkInvariants(result, 300);
    EXPECT_GT(result.hitRate, 0.5);
    std::size_t sdxlRefinements = 0;
    for (const auto &r : result.metrics.records()) {
        if (r.cacheHit) {
            EXPECT_GT(r.k, 0);
            EXPECT_GE(r.similarity, 0.25);
            EXPECT_EQ(r.kind, ServeKind::Refinement);
            sdxlRefinements += r.servedBy == "SDXL";
        } else {
            EXPECT_EQ(r.servedBy, "SD3.5L");
        }
    }
    EXPECT_GT(sdxlRefinements, 0u);
}

TEST(System, MoDMBeatsVanillaOnSaturatedThroughput)
{
    auto gen = workload::makeDiffusionDB(7);
    std::vector<workload::Prompt> warm;
    for (int i = 0; i < 600; ++i)
        warm.push_back(gen->next());
    const auto batch = workload::buildBatchTrace(*gen, 300);

    auto params = smallParams();
    ServingSystem modmSystem(
        baselines::modm(diffusion::sd35Large(), diffusion::sdxl(),
                        params));
    modmSystem.warmCache(warm);
    const auto modmResult = modmSystem.run(batch);

    ServingSystem vanillaSystem(
        baselines::vanilla(diffusion::sd35Large(), params));
    const auto vanillaResult = vanillaSystem.run(batch);

    EXPECT_GT(modmResult.throughputPerMin,
              1.5 * vanillaResult.throughputPerMin);
    EXPECT_LT(modmResult.energyJ, vanillaResult.energyJ);
}

TEST(System, NirvanaSkipsStepsOnLargeModelOnly)
{
    auto bundle = makeBundle(600, 300, 4.0);
    ServingSystem system(
        baselines::nirvana(diffusion::sd35Large(), smallParams()));
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    checkInvariants(result, 300);
    EXPECT_GT(result.hitRate, 0.3);
    for (const auto &r : result.metrics.records()) {
        EXPECT_EQ(r.servedBy, "SD3.5L"); // never a small model
        if (r.cacheHit) {
            EXPECT_GE(r.similarity, 0.82); // text-to-text band
            EXPECT_LE(r.k, 20);            // conservative skips
        }
    }
}

TEST(System, PineconeReturnsCachedImagesDirectly)
{
    auto bundle = makeBundle(600, 300, 4.0);
    ServingSystem system(
        baselines::pinecone(diffusion::sd35Large(), smallParams()));
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    checkInvariants(result, 300);
    std::size_t directs = 0;
    for (const auto &r : result.metrics.records()) {
        if (r.kind == ServeKind::DirectReturn) {
            ++directs;
            // Retrieval-only latency, no GPU time.
            EXPECT_LT(r.latency(), 120.0);
            EXPECT_EQ(r.k, 0);
        }
    }
    EXPECT_GT(directs, 50u);
}

TEST(System, StandaloneSmallUsesOnlySmallModel)
{
    auto bundle = makeBundle(0, 120, 6.0);
    ServingSystem system(
        baselines::standalone(diffusion::sana(), smallParams()));
    const auto result = system.run(bundle.trace);
    checkInvariants(result, 120);
    for (const auto &r : result.metrics.records())
        EXPECT_EQ(r.servedBy, "SANA");
}

TEST(System, CacheLargeOnlyAdmissionLowersHitRate)
{
    auto makeSystem = [&](AdmissionPolicy admission) {
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), smallParams());
        config.admission = admission;
        return config;
    };
    auto bundleA = makeBundle(300, 400, 6.0, 11);
    ServingSystem all(makeSystem(AdmissionPolicy::CacheAll));
    all.warmCache(bundleA.warm);
    const auto allResult = all.run(bundleA.trace);

    auto bundleB = makeBundle(300, 400, 6.0, 11);
    ServingSystem largeOnly(makeSystem(AdmissionPolicy::CacheLargeOnly));
    largeOnly.warmCache(bundleB.warm);
    const auto largeResult = largeOnly.run(bundleB.trace);

    // Caching all images serves temporally adjacent requests better
    // (paper Fig. 9: cache-all >= cache-large).
    EXPECT_GE(allResult.hitRate, largeResult.hitRate);
}

TEST(System, DeterministicAcrossRuns)
{
    auto bundleA = makeBundle(200, 150, 5.0, 99);
    auto bundleB = makeBundle(200, 150, 5.0, 99);
    ServingSystem a(baselines::modm(diffusion::sd35Large(),
                                    diffusion::sdxl(), smallParams()));
    ServingSystem b(baselines::modm(diffusion::sd35Large(),
                                    diffusion::sdxl(), smallParams()));
    a.warmCache(bundleA.warm);
    b.warmCache(bundleB.warm);
    const auto ra = a.run(bundleA.trace);
    const auto rb = b.run(bundleB.trace);
    EXPECT_DOUBLE_EQ(ra.throughputPerMin, rb.throughputPerMin);
    EXPECT_DOUBLE_EQ(ra.hitRate, rb.hitRate);
    EXPECT_DOUBLE_EQ(ra.energyJ, rb.energyJ);
    ASSERT_EQ(ra.metrics.count(), rb.metrics.count());
    for (std::size_t i = 0; i < ra.metrics.count(); ++i) {
        EXPECT_DOUBLE_EQ(ra.metrics.records()[i].finish,
                         rb.metrics.records()[i].finish);
    }
}

TEST(System, MonitorReallocatesUnderLoad)
{
    // Under a hit-heavy overload the monitor must move workers away
    // from the initial all-large allocation.
    auto bundle = makeBundle(600, 400, 12.0);
    auto config = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), smallParams());
    ServingSystem system(config);
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    ASSERT_FALSE(result.allocations.empty());
    int minLarge = 1000;
    for (const auto &snap : result.allocations)
        minLarge = std::min(minLarge, snap.numLarge);
    EXPECT_LT(minLarge, 4);
    EXPECT_GE(minLarge, 1);
}

TEST(System, HitAgesAreNonNegativeAndRecorded)
{
    auto bundle = makeBundle(400, 300, 6.0);
    ServingSystem system(baselines::modm(
        diffusion::sd35Large(), diffusion::sdxl(), smallParams()));
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    EXPECT_FALSE(result.hitAges.empty());
    for (double age : result.hitAges)
        EXPECT_GE(age, 0.0);
}

TEST(System, KeepOutputsProducesParallelArrays)
{
    auto bundle = makeBundle(200, 100, 5.0);
    ServingSystem system(baselines::modm(
        diffusion::sd35Large(), diffusion::sdxl(), smallParams()));
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    ASSERT_EQ(result.prompts.size(), 100u);
    ASSERT_EQ(result.images.size(), 100u);
    for (std::size_t i = 0; i < result.prompts.size(); ++i)
        EXPECT_EQ(result.prompts[i].id, result.images[i].promptId);
}

TEST(System, CacheRespectsCapacityDuringServing)
{
    auto bundle = makeBundle(700, 300, 6.0);
    auto config = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), smallParams());
    config.cacheCapacity = 500;
    ServingSystem system(config);
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    EXPECT_LE(result.cacheSize, 500u);
    EXPECT_GT(result.cacheSize, 0u);
}

TEST(System, RetrievalParallelismDoesNotChangeResults)
{
    // Sharded retrieval is exact, so an identical experiment with
    // parallel cache scans must reproduce the serial run bit-for-bit.
    ServingResult results[2];
    for (const std::size_t parallelism : {std::size_t{1}, std::size_t{0}}) {
        auto bundle = makeBundle(300, 200, 6.0);
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), smallParams());
        config.retrievalParallelism = parallelism;
        ServingSystem system(config);
        system.warmCache(bundle.warm);
        results[parallelism == 0] = system.run(bundle.trace);
    }
    EXPECT_EQ(results[0].hitRate, results[1].hitRate);
    EXPECT_EQ(results[0].throughputPerMin, results[1].throughputPerMin);
    EXPECT_EQ(results[0].duration, results[1].duration);
    ASSERT_EQ(results[0].metrics.count(), results[1].metrics.count());
    const auto &a = results[0].metrics.records();
    const auto &b = results[1].metrics.records();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].promptId, b[i].promptId);
        EXPECT_EQ(a[i].finish, b[i].finish);
        EXPECT_EQ(a[i].servedBy, b[i].servedBy);
    }
}

TEST(System, RunIsSingleShot)
{
    auto bundle = makeBundle(0, 10, 5.0);
    ServingSystem system(
        baselines::vanilla(diffusion::sd35Large(), smallParams()));
    system.run(bundle.trace);
    EXPECT_DEATH(system.run(bundle.trace), "single-shot");
}

} // namespace
} // namespace modm::serving

/**
 * @file
 * Property tests for sharded CosineIndex retrieval: the parallel scan
 * must return bit-identical results to the serial scan — same ids, same
 * order, same exact similarity doubles — across the edge sizes (empty,
 * one row, k-1, k) and at the paper's 100k-entry scale, with and
 * without removals.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "src/common/rng.hh"
#include "src/common/thread_pool.hh"
#include "src/embedding/embedding.hh"
#include "src/embedding/index.hh"

namespace modm::embedding {
namespace {

constexpr std::size_t kK = 8;

/** Build an index of `entries` random unit embeddings. */
CosineIndex
makeIndex(std::size_t entries, std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    CosineIndex index(dim);
    for (std::size_t i = 0; i < entries; ++i)
        index.insert(i, Embedding(randomUnitVec(dim, rng)));
    return index;
}

/** Serial and sharded scans must agree exactly on every query. */
void
expectShardedMatchesSerial(CosineIndex &index, std::size_t dim,
                           std::size_t queries, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t q = 0; q < queries; ++q) {
        const Embedding query(randomUnitVec(dim, rng));

        index.setParallelism(1);
        const Match serialBest = index.best(query);
        const std::vector<Match> serialTop = index.topK(query, kK);

        // Force sharding even on tiny indexes and single-core
        // machines: threshold 0 plus explicit shard counts (the pool
        // drains extra shards with whatever threads it has). 0 also
        // checks the auto mode.
        index.setParallelThreshold(0);
        for (const std::size_t shards :
             {std::size_t{0}, std::size_t{2}, std::size_t{4},
              std::size_t{13}}) {
            index.setParallelism(shards);
            const Match shardedBest = index.best(query);
            const std::vector<Match> shardedTop = index.topK(query, kK);

            EXPECT_EQ(serialBest.id, shardedBest.id) << shards;
            EXPECT_EQ(serialBest.similarity, shardedBest.similarity)
                << shards;

            ASSERT_EQ(serialTop.size(), shardedTop.size());
            for (std::size_t i = 0; i < serialTop.size(); ++i) {
                EXPECT_EQ(serialTop[i].id, shardedTop[i].id)
                    << shards << " shards, rank " << i;
                EXPECT_EQ(serialTop[i].similarity, shardedTop[i].similarity)
                    << shards << " shards, rank " << i;
            }
        }
    }
}

TEST(ParallelIndex, EdgeSizesMatchSerial)
{
    // 0, 1, k-1, and k entries: shard count exceeds or equals rows.
    for (const std::size_t entries :
         {std::size_t{0}, std::size_t{1}, kK - 1, kK}) {
        SCOPED_TRACE(entries);
        auto index = makeIndex(entries, kEmbeddingDim, 1 + entries);
        expectShardedMatchesSerial(index, kEmbeddingDim, 20, 99 + entries);
    }
}

TEST(ParallelIndex, MidSizesMatchSerial)
{
    for (const std::size_t entries : {std::size_t{257}, std::size_t{4096}}) {
        SCOPED_TRACE(entries);
        auto index = makeIndex(entries, kEmbeddingDim, entries);
        expectShardedMatchesSerial(index, kEmbeddingDim, 10, 7 * entries);
    }
}

TEST(ParallelIndex, HundredThousandEntriesMatchSerial)
{
    // The paper's cache scale. Few queries: each serial scan is 6.4M
    // multiply-adds.
    auto index = makeIndex(100000, kEmbeddingDim, 42);
    expectShardedMatchesSerial(index, kEmbeddingDim, 3, 4242);
}

TEST(ParallelIndex, MatchesSerialAfterRemovals)
{
    auto index = makeIndex(10000, kEmbeddingDim, 5);
    // Swap-with-last removal permutes slots; sharding must not care.
    for (std::size_t id = 0; id < 10000; id += 3)
        ASSERT_TRUE(index.remove(id));
    expectShardedMatchesSerial(index, kEmbeddingDim, 10, 555);
}

TEST(ParallelIndex, DuplicateScoresTieBreakDeterministically)
{
    // Insert the same embedding many times: every score ties, so the
    // (similarity desc, slot asc) order is all that separates results.
    Rng rng(11);
    const Vec base = randomUnitVec(kEmbeddingDim, rng);
    CosineIndex index;
    for (std::size_t i = 0; i < 64; ++i)
        index.insert(i, Embedding(base));
    expectShardedMatchesSerial(index, kEmbeddingDim, 5, 1111);
}

TEST(ParallelIndex, ParallelismCapRespected)
{
    auto index = makeIndex(1000, kEmbeddingDim, 3);
    index.setParallelThreshold(0);
    for (const std::size_t cap : {std::size_t{2}, std::size_t{3}}) {
        index.setParallelism(cap);
        Rng rng(17);
        const Embedding query(randomUnitVec(kEmbeddingDim, rng));
        const auto top = index.topK(query, kK);
        ASSERT_EQ(top.size(), kK);
        index.setParallelism(1);
        const auto serial = index.topK(query, kK);
        for (std::size_t i = 0; i < kK; ++i) {
            EXPECT_EQ(serial[i].id, top[i].id);
            EXPECT_EQ(serial[i].similarity, top[i].similarity);
        }
    }
}

TEST(ThreadPool, ParallelForCoversEveryShardOnce)
{
    ThreadPool pool(3);
    for (const std::size_t shards :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
        std::vector<int> hits(shards, 0);
        pool.parallelFor(shards,
                         [&](std::size_t s) { ++hits[s]; });
        for (std::size_t s = 0; s < shards; ++s)
            EXPECT_EQ(hits[s], 1) << "shard " << s;
    }
}

TEST(ThreadPool, ReusableAcrossJobs)
{
    ThreadPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::vector<int> hits(16, 0);
        pool.parallelFor(16, [&](std::size_t s) { ++hits[s]; });
        for (std::size_t s = 0; s < 16; ++s)
            ASSERT_EQ(hits[s], 1);
    }
}

TEST(ThreadPool, ConcurrentSubmittersSerialize)
{
    // Two threads sharing one pool: submissions must not trample each
    // other's shard counters (regression for a deadlock where a second
    // submitter overwrote an in-flight job's state).
    ThreadPool pool(2);
    auto hammer = [&pool] {
        for (int round = 0; round < 200; ++round) {
            std::vector<int> hits(8, 0);
            pool.parallelFor(8, [&](std::size_t s) { ++hits[s]; });
            for (std::size_t s = 0; s < 8; ++s)
                ASSERT_EQ(hits[s], 1);
        }
    };
    std::thread other(hammer);
    hammer();
    other.join();
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.concurrency(), 1u);
    std::vector<int> hits(4, 0);
    pool.parallelFor(4, [&](std::size_t s) { ++hits[s]; });
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(hits[s], 1);
}

} // namespace
} // namespace modm::embedding

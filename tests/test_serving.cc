/**
 * @file
 * Unit tests for the serving components: the Fig. 5b k-decision table
 * and its calibration, the PID controller, the metrics collector, and
 * the global monitor (Algorithm 1 in both modes, small-model
 * escalation, PID damping).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/serving/k_decision.hh"
#include "src/serving/metrics.hh"
#include "src/serving/monitor.hh"
#include "src/serving/pid.hh"

namespace modm::serving {
namespace {

TEST(KDecision, PaperTableFig5b)
{
    // Fig. 5b: >=0.25 -> 5, >=0.27 -> 10, >=0.28 -> 15, >=0.29 -> 25,
    // >=0.30 -> 30.
    KDecision kd;
    EXPECT_FALSE(kd.isHit(0.249));
    EXPECT_TRUE(kd.isHit(0.25));
    EXPECT_EQ(kd.decide(0.25), 5);
    EXPECT_EQ(kd.decide(0.265), 5);
    EXPECT_EQ(kd.decide(0.27), 10);
    EXPECT_EQ(kd.decide(0.285), 15);
    EXPECT_EQ(kd.decide(0.295), 25);
    EXPECT_EQ(kd.decide(0.31), 30);
}

TEST(KDecision, CalibrationRecoversThresholds)
{
    // Synthetic quality response: Q(k, s) = 1 + (s - tau_k) * 4 with
    // known tau; calibration must recover tau at alpha = 1.0 within a
    // bucket width.
    const std::map<int, double> tau = {
        {5, 0.25}, {10, 0.27}, {15, 0.28}};
    std::vector<CalibrationPoint> points;
    for (const auto &[k, t] : tau) {
        for (double s = 0.20; s <= 0.34; s += 0.001)
            points.push_back({k, s, 1.0 + (s - t) * 4.0});
    }
    const auto config = KDecision::calibrate(points, 1.0, 0.005);
    ASSERT_EQ(config.ks.size(), 3u);
    for (std::size_t i = 0; i < config.ks.size(); ++i)
        EXPECT_NEAR(config.floors[i], tau.at(config.ks[i]), 0.011)
            << "k=" << config.ks[i];
}

TEST(KDecision, CalibrationEnforcesMonotoneFloors)
{
    std::vector<CalibrationPoint> points;
    // k=5 crosses at 0.28, k=10 (noisily) at 0.26: floors must not
    // decrease with k after monotonicity enforcement.
    for (double s = 0.20; s <= 0.34; s += 0.001) {
        points.push_back({5, s, 1.0 + (s - 0.28) * 4.0});
        points.push_back({10, s, 1.0 + (s - 0.26) * 4.0});
    }
    const auto config = KDecision::calibrate(points, 1.0);
    ASSERT_EQ(config.ks.size(), 2u);
    EXPECT_GE(config.floors[1], config.floors[0]);
}

TEST(Pid, ProportionalStep)
{
    PidController pid({.kp = 0.5, .ki = 0.0, .kd = 0.0});
    EXPECT_DOUBLE_EQ(pid.compute(10.0, 6.0), 2.0);
}

TEST(Pid, IntegralAccumulates)
{
    PidController pid({.kp = 0.0, .ki = 0.1, .kd = 0.0});
    EXPECT_NEAR(pid.compute(1.0, 0.0), 0.1, 1e-12);
    EXPECT_NEAR(pid.compute(1.0, 0.0), 0.2, 1e-12);
    pid.reset();
    EXPECT_NEAR(pid.compute(1.0, 0.0), 0.1, 1e-12);
}

TEST(Pid, DerivativeRespondsToErrorChange)
{
    PidController pid({.kp = 0.0, .ki = 0.0, .kd = 1.0});
    EXPECT_DOUBLE_EQ(pid.compute(1.0, 0.0), 0.0); // no previous error
    EXPECT_DOUBLE_EQ(pid.compute(3.0, 0.0), 2.0); // error rose by 2
}

TEST(Pid, PaperGainsConvergeWithoutOscillation)
{
    // Track a step change in the setpoint with the paper's tuning; the
    // controlled value must settle near the target without overshooting
    // wildly.
    PidController pid; // paper gains 0.6 / 0.05 / 0.05
    double value = 16.0;
    double peak = 0.0;
    for (int i = 0; i < 40; ++i) {
        value += pid.compute(4.0, value);
        peak = std::max(peak, std::fabs(value - 4.0));
    }
    EXPECT_NEAR(value, 4.0, 0.5);
    EXPECT_LT(peak, 13.0);
}

TEST(Metrics, AggregatesMatchRecords)
{
    MetricsCollector m;
    RequestRecord r;
    r.arrival = 0.0;
    r.start = 1.0;
    r.finish = 11.0;
    r.cacheHit = true;
    r.k = 10;
    m.record(r);
    r.arrival = 5.0;
    r.start = 11.0;
    r.finish = 65.0;
    r.cacheHit = false;
    r.k = 0;
    m.record(r);

    EXPECT_EQ(m.count(), 2u);
    EXPECT_DOUBLE_EQ(m.hitRate(), 0.5);
    EXPECT_DOUBLE_EQ(m.meanK(), 10.0);
    EXPECT_DOUBLE_EQ(m.meanLatency(), (11.0 + 60.0) / 2.0);
    EXPECT_DOUBLE_EQ(m.sloViolationRate(30.0), 0.5);
    EXPECT_DOUBLE_EQ(m.sloViolationRate(100.0), 0.0);
    EXPECT_DOUBLE_EQ(m.lastCompletion(), 65.0);
    EXPECT_NEAR(m.throughputPerMinute(), 2.0 * 60.0 / 65.0, 1e-9);
}

TEST(Metrics, KDistributionNormalizes)
{
    MetricsCollector m;
    for (int i = 0; i < 3; ++i) {
        RequestRecord r;
        r.finish = 1.0;
        r.cacheHit = true;
        r.k = i < 2 ? 5 : 30;
        m.record(r);
    }
    const auto dist = m.kDistribution();
    EXPECT_NEAR(dist.at(5), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(dist.at(30), 1.0 / 3.0, 1e-9);
}

TEST(Metrics, CompletionsPerMinuteBuckets)
{
    MetricsCollector m;
    for (double t : {10.0, 30.0, 70.0, 130.0}) {
        RequestRecord r;
        r.finish = t;
        m.record(r);
    }
    const auto buckets = m.completionsPerMinute(180.0);
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_DOUBLE_EQ(buckets[0], 2.0);
    EXPECT_DOUBLE_EQ(buckets[1], 1.0);
    EXPECT_DOUBLE_EQ(buckets[2], 1.0);
}

MonitorConfig
testMonitorConfig(MonitorMode mode)
{
    MonitorConfig config;
    config.numWorkers = 16;
    config.pLarge = 0.625;             // SD3.5L on MI210
    config.pSmall = {1.5, 4.14};       // SDXL, SANA on MI210
    config.totalSteps = 50;
    config.mode = mode;
    return config;
}

MonitorInputs
testInputs(double rate, double hit_rate)
{
    MonitorInputs inputs;
    inputs.requestRate = rate;
    inputs.hitRate = hit_rate;
    inputs.kRates = {{5, 0.2}, {15, 0.3}, {25, 0.3}, {30, 0.2}};
    return inputs;
}

TEST(Monitor, WorkloadsFollowEquations)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::ThroughputOptimized));
    const auto inputs = testInputs(20.0, 0.9);
    // Eq. 7: (1 - 0.9) * 20 = 2.
    EXPECT_NEAR(monitor.missWorkload(inputs), 2.0, 1e-9);
    // Eq. 8: 0.9 * 20 * sum P(k)(1 - k/50); refine factor:
    // 0.2*0.9 + 0.3*0.7 + 0.3*0.5 + 0.2*0.4 = 0.62.
    EXPECT_NEAR(monitor.hitWorkload(inputs), 18.0 * 0.62, 1e-9);
}

TEST(Monitor, QualityModeMaximizesLargeUnderConstraints)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::QualityOptimized));
    // Light load: everything fits on large models -> allocation stays
    // large-heavy.
    const double light = monitor.heuristicNumLarge(testInputs(4.0, 0.9),
                                                   0);
    EXPECT_GE(light, 15.0);
    // Heavy load: hits must be off-loaded to small models.
    const double heavy = monitor.heuristicNumLarge(testInputs(22.0, 0.9),
                                                   0);
    EXPECT_LE(heavy, 12.0);
    EXPECT_GE(heavy, std::ceil(2.2 / 0.625)); // still covers misses
}

TEST(Monitor, ThroughputModeSplitsByWorkloadRatio)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::ThroughputOptimized));
    const auto inputs = testInputs(20.0, 0.9);
    // Eq. 11-12: weighted hit workload = 11.16 * 0.625 / 1.5 = 4.65;
    // numLarge = 2 / (4.65 + 2) * 16 = 4.81.
    const double n = monitor.heuristicNumLarge(inputs, 0);
    EXPECT_NEAR(n, 2.0 / (11.16 * 0.625 / 1.5 + 2.0) * 16.0, 0.01);
}

TEST(Monitor, EscalatesSmallModelUnderPressure)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::ThroughputOptimized));
    // Moderate load: SDXL (index 0) suffices.
    auto alloc = monitor.update(testInputs(14.0, 0.8));
    EXPECT_EQ(alloc.smallModelIndex, 0u);
    // Beyond SDXL's reach (paper: above ~22/min on 16 MI210s) the
    // monitor must switch to SANA.
    alloc = monitor.update(testInputs(30.0, 0.8));
    EXPECT_EQ(alloc.smallModelIndex, 1u);
}

TEST(Monitor, FeasibilityChecksBothConstraints)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::ThroughputOptimized));
    EXPECT_TRUE(monitor.feasible(testInputs(10.0, 0.9), 0));
    // All-miss load beyond total large capacity (16 * 0.625 = 10/min).
    EXPECT_FALSE(monitor.feasible(testInputs(12.0, 0.0), 0));
}

TEST(Monitor, PidDampsAllocationChanges)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::ThroughputOptimized));
    // Initial allocation is all-large (16); a sudden hit-heavy load
    // must move the allocation down gradually, not in one step.
    const auto first = monitor.update(testInputs(20.0, 0.9));
    EXPECT_GT(first.numLarge, 6);
    int last = first.numLarge;
    int steps = 0;
    while (steps < 50) {
        const auto alloc = monitor.update(testInputs(20.0, 0.9));
        EXPECT_LE(alloc.numLarge, last + 2); // no wild oscillation
        last = alloc.numLarge;
        ++steps;
        if (last <= 6)
            break;
    }
    EXPECT_LE(last, 6);
    // The first update must not jump straight to the ~5-worker target:
    // damping spreads the move over multiple periods.
    EXPECT_GE(first.numLarge, 8);
}

TEST(Monitor, AllocationStaysWithinBounds)
{
    GlobalMonitor monitor(
        testMonitorConfig(MonitorMode::QualityOptimized));
    for (double rate : {1.0, 5.0, 15.0, 40.0, 100.0}) {
        const auto alloc = monitor.update(testInputs(rate, 0.5));
        EXPECT_GE(alloc.numLarge, 1);
        EXPECT_LE(alloc.numLarge, 16);
    }
}

} // namespace
} // namespace modm::serving

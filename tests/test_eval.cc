/**
 * @file
 * Unit tests for the evaluation metrics: CLIPScore, FID, Inception
 * Score and PickScore orderings that the paper's quality tables depend
 * on.
 */

#include <gtest/gtest.h>

#include "src/common/rng.hh"
#include "src/common/stats.hh"
#include "src/diffusion/sampler.hh"
#include "src/eval/metrics.hh"
#include "src/workload/generator.hh"

namespace modm::eval {
namespace {

struct Populations
{
    std::vector<workload::Prompt> prompts;
    std::vector<diffusion::Image> large;
    std::vector<diffusion::Image> small;
    std::vector<diffusion::Image> reference;
};

Populations
makePopulations(int n = 400)
{
    Populations p;
    workload::DiffusionDBModel gen({}, 3);
    diffusion::Sampler sampler(5);
    diffusion::Sampler refSampler(6);
    for (int i = 0; i < n; ++i) {
        p.prompts.push_back(gen.next());
        p.large.push_back(
            sampler.generate(diffusion::sd35Large(), p.prompts.back(),
                             0.0));
        p.small.push_back(
            sampler.generate(diffusion::sana(), p.prompts.back(), 0.0));
        p.reference.push_back(refSampler.generate(
            diffusion::sd35Large(), p.prompts.back(), 0.0));
    }
    return p;
}

class MetricsTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { pops_ = new Populations(makePopulations()); }
    static void TearDownTestSuite()
    {
        delete pops_;
        pops_ = nullptr;
    }

    MetricSuite metrics_;
    static Populations *pops_;
};

Populations *MetricsTest::pops_ = nullptr;

TEST_F(MetricsTest, ClipScoreInPaperRange)
{
    RunningStat clip;
    for (std::size_t i = 0; i < pops_->prompts.size(); ++i)
        clip.add(metrics_.clipScore(pops_->prompts[i], pops_->large[i]));
    EXPECT_GT(clip.mean(), 26.0);
    EXPECT_LT(clip.mean(), 31.0);
}

TEST_F(MetricsTest, ClipDetectsMismatchedPairs)
{
    // Scoring image i against prompt j (j != i) must be much lower.
    double matched = 0.0, mismatched = 0.0;
    const std::size_t n = pops_->prompts.size();
    for (std::size_t i = 0; i < n; ++i) {
        matched += metrics_.clipScore(pops_->prompts[i], pops_->large[i]);
        mismatched += metrics_.clipScore(pops_->prompts[i],
                                         pops_->large[(i + 37) % n]);
    }
    EXPECT_GT(matched / n, mismatched / n + 15.0);
}

TEST_F(MetricsTest, FidSameModelFloorIsSmall)
{
    const double floor =
        metrics_.fid(pops_->large, pops_->reference);
    EXPECT_GT(floor, 1.0);
    EXPECT_LT(floor, 12.0);
}

TEST_F(MetricsTest, FidRanksSmallModelWorse)
{
    const double largeFid = metrics_.fid(pops_->large, pops_->reference);
    const double smallFid = metrics_.fid(pops_->small, pops_->reference);
    EXPECT_GT(smallFid, largeFid + 5.0);
}

TEST_F(MetricsTest, FidIsSymmetricEnough)
{
    const double ab = metrics_.fid(pops_->large, pops_->small);
    const double ba = metrics_.fid(pops_->small, pops_->large);
    EXPECT_NEAR(ab, ba, 0.05 * std::max(ab, ba) + 0.1);
}

TEST_F(MetricsTest, InceptionScoreAboveOneAndRanksFidelity)
{
    const double largeIs = metrics_.inceptionScore(pops_->large);
    const double smallIs = metrics_.inceptionScore(pops_->small);
    EXPECT_GT(largeIs, 1.0);
    EXPECT_LT(largeIs, 32.0); // bounded by class count
    EXPECT_GT(largeIs, smallIs);
}

TEST_F(MetricsTest, ClassPosteriorIsADistribution)
{
    const auto p = metrics_.classPosterior(pops_->large[0]);
    double total = 0.0;
    for (double v : p) {
        EXPECT_GE(v, 0.0);
        total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(MetricsTest, PickScoreInPaperRangeAndRanksModels)
{
    RunningStat large, small;
    for (std::size_t i = 0; i < pops_->prompts.size(); ++i) {
        large.add(metrics_.pickScore(pops_->prompts[i], pops_->large[i]));
        small.add(metrics_.pickScore(pops_->prompts[i], pops_->small[i]));
    }
    EXPECT_GT(large.mean(), 20.0);
    EXPECT_LT(large.mean(), 23.0);
    EXPECT_GT(large.mean(), small.mean());
}

TEST_F(MetricsTest, ReportAggregatesAllMetrics)
{
    const auto report =
        metrics_.report(pops_->prompts, pops_->large, pops_->reference);
    EXPECT_EQ(report.count, pops_->prompts.size());
    EXPECT_GT(report.clip, 0.0);
    EXPECT_GT(report.fid, 0.0);
    EXPECT_GT(report.is, 1.0);
    EXPECT_GT(report.pick, 0.0);
}

TEST_F(MetricsTest, MetricSuiteIsDeterministic)
{
    MetricSuite a, b;
    EXPECT_DOUBLE_EQ(a.clipScore(pops_->prompts[0], pops_->large[0]),
                     b.clipScore(pops_->prompts[0], pops_->large[0]));
    EXPECT_DOUBLE_EQ(a.fid(pops_->large, pops_->reference),
                     b.fid(pops_->large, pops_->reference));
}

} // namespace
} // namespace modm::eval

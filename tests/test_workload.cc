/**
 * @file
 * Unit tests for the workload substrate: topic universe, the
 * DiffusionDB-like and MJHQ-like generators (session structure,
 * temporal locality precursors), and arrival processes.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/stats.hh"
#include "src/workload/arrivals.hh"
#include "src/workload/generator.hh"
#include "src/workload/trace.hh"
#include "src/workload/topics.hh"

namespace modm::workload {
namespace {

TEST(TopicUniverse, DeterministicInSeed)
{
    TopicUniverseConfig config;
    config.numTopics = 10;
    TopicUniverse a(config, 5), b(config, 5), c(config, 6);
    EXPECT_EQ(a.topic(3).visualCenter, b.topic(3).visualCenter);
    EXPECT_NE(a.topic(3).visualCenter, c.topic(3).visualCenter);
}

TEST(TopicUniverse, CentersAreUnitVectors)
{
    TopicUniverseConfig config;
    config.numTopics = 20;
    TopicUniverse u(config, 7);
    for (std::uint32_t t = 0; t < 20; ++t) {
        EXPECT_NEAR(norm(u.topic(t).visualCenter), 1.0, 1e-6);
        EXPECT_NEAR(norm(u.topic(t).lexicalCenter), 1.0, 1e-6);
    }
}

TEST(TopicUniverse, ZipfSamplingSkews)
{
    TopicUniverseConfig config;
    config.numTopics = 100;
    config.zipfExponent = 1.2;
    TopicUniverse u(config, 9);
    Rng rng(11);
    std::map<std::uint32_t, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[u.sampleTopic(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], 20000 / 100);
}

TEST(TopicUniverse, RealizedTextIsNonEmptyAndFromPool)
{
    TopicUniverseConfig config;
    config.numTopics = 4;
    TopicUniverse u(config, 13);
    Rng rng(17);
    for (int i = 0; i < 20; ++i) {
        const auto text = u.realizeText(2, rng);
        EXPECT_FALSE(text.empty());
    }
}

TEST(DiffusionDB, PromptIdsAreSequential)
{
    DiffusionDBModel gen({}, 3);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(gen.next().id, i);
}

TEST(DiffusionDB, SessionsIterateOnOneConcept)
{
    DiffusionDBModel gen({}, 5);
    std::map<std::uint64_t, std::vector<Prompt>> sessions;
    for (int i = 0; i < 3000; ++i) {
        const auto p = gen.next();
        sessions[p.sessionId].push_back(p);
    }
    // Within a session: same user, same topic, slowly drifting concept.
    RunningStat withinSession;
    int multiPromptSessions = 0;
    for (const auto &[id, prompts] : sessions) {
        if (prompts.size() < 2)
            continue;
        ++multiPromptSessions;
        for (std::size_t i = 1; i < prompts.size(); ++i) {
            EXPECT_EQ(prompts[i].userId, prompts[0].userId);
            EXPECT_EQ(prompts[i].topicId, prompts[0].topicId);
            withinSession.add(cosine(prompts[i].visualConcept,
                                     prompts[i - 1].visualConcept));
        }
    }
    EXPECT_GT(multiPromptSessions, 100);
    // Consecutive iterations stay visually close (drift is small).
    EXPECT_GT(withinSession.mean(), 0.95);
}

TEST(DiffusionDB, SessionLengthMatchesConfig)
{
    DiffusionDBConfig config;
    config.meanSessionLength = 5.0;
    DiffusionDBModel gen(config, 7);
    std::map<std::uint64_t, int> lengths;
    for (int i = 0; i < 20000; ++i)
        ++lengths[gen.next().sessionId];
    RunningStat stat;
    for (const auto &[id, len] : lengths)
        stat.add(len);
    // Sessions still open at the end bias the mean down slightly.
    EXPECT_NEAR(stat.mean(), 5.0, 0.8);
}

TEST(DiffusionDB, InterleavesMultipleSessions)
{
    DiffusionDBModel gen({}, 9);
    std::set<std::uint64_t> activeWindow;
    for (int i = 0; i < 200; ++i)
        activeWindow.insert(gen.next().sessionId);
    // Many distinct sessions interleave within a short window.
    EXPECT_GT(activeWindow.size(), 20u);
}

TEST(MJHQ, NoSessionStructure)
{
    MJHQModel gen({}, 11);
    std::set<std::uint64_t> sessions;
    for (int i = 0; i < 500; ++i)
        sessions.insert(gen.next().sessionId);
    EXPECT_EQ(sessions.size(), 500u);
}

TEST(MJHQ, WiderConceptSpreadThanDiffusionDB)
{
    // Consecutive prompts in MJHQ are visually unrelated.
    MJHQModel gen({}, 13);
    RunningStat consecutive;
    auto prev = gen.next();
    for (int i = 0; i < 500; ++i) {
        const auto p = gen.next();
        consecutive.add(cosine(p.visualConcept, prev.visualConcept));
        prev = p;
    }
    EXPECT_LT(consecutive.mean(), 0.3);
}

TEST(Poisson, InterArrivalMeanMatchesRate)
{
    PoissonArrivals arrivals(12.0); // 12/min -> 0.2/s
    Rng rng(17);
    double last = 0.0;
    RunningStat gaps;
    for (int i = 0; i < 20000; ++i) {
        const double t = arrivals.next(rng);
        gaps.add(t - last);
        last = t;
    }
    EXPECT_NEAR(gaps.mean(), 5.0, 0.15);
}

TEST(Poisson, TimestampsIncrease)
{
    PoissonArrivals arrivals(5.0);
    Rng rng(19);
    double last = -1.0;
    for (int i = 0; i < 1000; ++i) {
        const double t = arrivals.next(rng);
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(Piecewise, RateChangesAcrossSegments)
{
    PiecewiseArrivals arrivals({{600.0, 6.0}, {600.0, 24.0}});
    EXPECT_DOUBLE_EQ(arrivals.rateAt(10.0), 6.0);
    EXPECT_DOUBLE_EQ(arrivals.rateAt(700.0), 24.0);
    EXPECT_DOUBLE_EQ(arrivals.rateAt(5000.0), 24.0);
    EXPECT_DOUBLE_EQ(arrivals.totalDuration(), 1200.0);

    Rng rng(23);
    int firstSegment = 0, secondSegment = 0;
    while (true) {
        const double t = arrivals.next(rng);
        if (t > 1200.0)
            break;
        if (t < 600.0)
            ++firstSegment;
        else
            ++secondSegment;
    }
    // Roughly 60 vs 240 expected arrivals.
    EXPECT_GT(secondSegment, 2 * firstSegment);
}

TEST(Trace, BuildTraceSortsByConstruction)
{
    auto gen = makeDiffusionDB(3);
    PoissonArrivals arrivals(10.0);
    Rng rng(29);
    const auto trace = buildTrace(*gen, arrivals, 200, rng);
    ASSERT_EQ(trace.size(), 200u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
}

TEST(Trace, BatchTraceArrivesAtZero)
{
    auto gen = makeMJHQ(5);
    const auto trace = buildBatchTrace(*gen, 50);
    ASSERT_EQ(trace.size(), 50u);
    for (const auto &r : trace)
        EXPECT_DOUBLE_EQ(r.arrival, 0.0);
}

TEST(Trace, DurationTraceRespectsBound)
{
    auto gen = makeDiffusionDB(7);
    PoissonArrivals arrivals(30.0);
    Rng rng(31);
    const auto trace = buildTraceForDuration(*gen, arrivals, 600.0, rng);
    EXPECT_GT(trace.size(), 200u);
    for (const auto &r : trace)
        EXPECT_LE(r.arrival, 600.0);
}

TEST(Trace, GeneratorsAreDeterministic)
{
    auto a = makeDiffusionDB(11);
    auto b = makeDiffusionDB(11);
    for (int i = 0; i < 100; ++i) {
        const auto pa = a->next();
        const auto pb = b->next();
        EXPECT_EQ(pa.text, pb.text);
        EXPECT_EQ(pa.visualConcept, pb.visualConcept);
        EXPECT_EQ(pa.sessionId, pb.sessionId);
    }
}

} // namespace
} // namespace modm::workload

/**
 * @file
 * Fault-tolerance subsystem tests: ring healing, the kill / drain /
 * rejoin lifecycle, request conservation under re-routing, k-replica
 * cache admission, bounded-load routing, and the recovery analysis.
 *
 *  - Ring healing is the property the ISSUE pins: removing one node
 *    from the consistent-hash ring reassigns only that node's topics,
 *    and a killed node's re-routed requests are conserved
 *    (assigned = completed + rerouted, across the cluster).
 *  - The no-op contract: a config without a fault plan must produce a
 *    digest with no failover section (the frozen-hash regression in
 *    test_multinode.cc pins the exact bytes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "src/baselines/presets.hh"
#include "src/serving/fault.hh"
#include "src/serving/router.hh"
#include "src/serving/system.hh"

namespace modm::serving {
namespace {

bench::WorkloadBundle
ddbBundle(std::size_t warm, std::size_t count, double rate,
          std::uint64_t seed = 42)
{
    return bench::poissonBundle(bench::Dataset::DiffusionDB, warm,
                                count, rate, seed);
}

workload::Prompt
topicPrompt(std::uint32_t topic)
{
    workload::Prompt prompt;
    prompt.topicId = topic;
    return prompt;
}

ServingConfig
clusterConfig(std::size_t nodes, RoutingPolicy routing,
              CachePartitioning partitioning, std::size_t replicas = 2)
{
    baselines::PresetParams params;
    params.numWorkers = 8;
    params.cacheCapacity = 800;
    auto config = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), params);
    config.cluster.numNodes = nodes;
    config.cluster.routing = routing;
    config.cluster.cachePartitioning = partitioning;
    config.cluster.replicationFactor = replicas;
    return config;
}

TEST(RingHealing, RemovalReassignsOnlyTheDeadNodesTopics)
{
    // The minimal-reassignment property, on the router itself: kill
    // one node and every topic either keeps its owner or belonged to
    // the dead node.
    auto router = makeRouter(RoutingPolicy::ConsistentHash, 5, 42);
    const std::vector<std::size_t> outstanding(5, 0);
    std::vector<std::size_t> before;
    for (std::uint32_t topic = 0; topic < 500; ++topic)
        before.push_back(router->route(topicPrompt(topic), outstanding));

    const std::size_t dead = 2;
    router->setNodeAlive(dead, false);
    std::size_t moved = 0;
    for (std::uint32_t topic = 0; topic < 500; ++topic) {
        const auto now = router->route(topicPrompt(topic), outstanding);
        EXPECT_NE(now, dead);
        if (before[topic] != dead) {
            EXPECT_EQ(now, before[topic])
                << "topic " << topic
                << " moved although its owner survived";
        } else {
            ++moved;
        }
    }
    EXPECT_GT(moved, 0u) << "node " << dead << " owned no topics";

    // Rejoin restores the original assignment exactly.
    router->setNodeAlive(dead, true);
    for (std::uint32_t topic = 0; topic < 500; ++topic)
        EXPECT_EQ(router->route(topicPrompt(topic), outstanding),
                  before[topic]);
}

TEST(RingHealing, HealedOwnerIsTheReplicaSuccessor)
{
    // The property the replication design leans on: after a kill, a
    // dead primary's topics route to what was the topic's second ring
    // owner — exactly where Replicated(k>=2) admission put the copy.
    const HashRing ring(4, 42);
    auto router = makeRouter(RoutingPolicy::ConsistentHash, 4,
                             42 ^ 0x0ULL);
    std::vector<bool> alive(4, true);
    for (std::uint32_t topic = 0; topic < 300; ++topic) {
        const auto owners = ring.owners(ring.topicKey(topic), 2);
        ASSERT_EQ(owners.size(), 2u);
        std::vector<bool> healed = alive;
        healed[owners[0]] = false;
        EXPECT_EQ(ring.owner(ring.topicKey(topic), healed), owners[1]);
    }
}

TEST(RingHealing, RoundRobinAndLeastOutstandingSkipDeadNodes)
{
    auto rr = makeRouter(RoutingPolicy::RoundRobin, 3, 42);
    rr->setNodeAlive(1, false);
    for (int i = 0; i < 10; ++i)
        EXPECT_NE(rr->route(topicPrompt(0), {}), 1u);

    auto lo = makeRouter(RoutingPolicy::LeastOutstanding, 3, 42);
    lo->setNodeAlive(0, false);
    // Node 0 has the fewest outstanding but is dead.
    EXPECT_EQ(lo->route(topicPrompt(0), {0, 5, 4}), 2u);
}

TEST(BoundedLoad, SpillsOnlyWhenTheOwnerIsOverloaded)
{
    const HashRing ring(4, 7 ^ kRingSeedSalt);
    auto router = makeRouter(RoutingPolicy::BoundedLoadConsistentHash,
                             4, 7 ^ kRingSeedSalt, 1.25);

    // Balanced load: pure affinity — equals the ring owner.
    for (std::uint32_t topic = 0; topic < 200; ++topic) {
        EXPECT_EQ(router->route(topicPrompt(topic), {4, 4, 4, 4}),
                  ring.owner(ring.topicKey(topic)));
    }
    // Owner overloaded: spill to the next ring owner under the bound.
    for (std::uint32_t topic = 0; topic < 200; ++topic) {
        const auto owners = ring.owners(ring.topicKey(topic), 4);
        std::vector<std::size_t> outstanding(4, 2);
        outstanding[owners[0]] = 100; // way past 1.25 x mean
        EXPECT_EQ(router->route(topicPrompt(topic), outstanding),
                  owners[1]);
    }
    // Warm routing is pure affinity (no load exists yet).
    for (std::uint32_t topic = 0; topic < 50; ++topic) {
        EXPECT_EQ(router->routeWarm(topicPrompt(topic)),
                  ring.owner(ring.topicKey(topic)));
    }
}

TEST(Failover, KilledNodeRequestsAreConserved)
{
    // The ISSUE's conservation property: run a 4-node cluster, kill
    // one node mid-trace, and check assigned = completed + rerouted
    // per node and across the cluster — no request lost, none served
    // twice.
    for (const auto routing :
         {RoutingPolicy::RoundRobin, RoutingPolicy::ConsistentHash,
          RoutingPolicy::BoundedLoadConsistentHash}) {
        auto config = clusterConfig(4, routing,
                                    CachePartitioning::Sharded);
        auto bundle = ddbBundle(200, 400, 24.0);
        const double mid = bundle.trace[200].arrival;
        config.faults.add(mid, 1, FaultKind::Kill);

        ServingSystem system(config);
        system.warmCache(bundle.warm);
        const auto result = system.run(bundle.trace);

        EXPECT_EQ(result.metrics.count(), 400u);
        std::set<std::uint64_t> served;
        for (const auto &r : result.metrics.records())
            served.insert(r.promptId);
        EXPECT_EQ(served.size(), 400u) << "every request exactly once";

        ASSERT_TRUE(result.failover.active);
        ASSERT_EQ(result.failover.nodes.size(), 4u);
        std::uint64_t assigned = 0;
        std::uint64_t completed = 0;
        std::uint64_t rerouted = 0;
        for (std::size_t n = 0; n < 4; ++n) {
            const auto &ns = result.nodes[n];
            const auto &nf = result.failover.nodes[n];
            EXPECT_EQ(ns.assigned, ns.completed + nf.reroutedOut)
                << "node " << n << " leaked requests";
            assigned += ns.assigned;
            completed += ns.completed;
            rerouted += nf.reroutedOut;
        }
        EXPECT_EQ(completed, 400u);
        EXPECT_EQ(assigned, 400u + rerouted)
            << "rerouted requests are assigned twice, served once";
        EXPECT_EQ(result.failover.rerouted, rerouted);
        EXPECT_GT(rerouted, 0u) << "the kill should strand a backlog";

        // The dead node stays dead: nothing assigned after the kill.
        const auto &deadNode = result.failover.nodes[1];
        EXPECT_GT(deadNode.downtimeS, 0.0);
        ASSERT_EQ(deadNode.downIntervals.size(), 1u);
        EXPECT_DOUBLE_EQ(deadNode.downIntervals[0].first, mid);
    }
}

TEST(Failover, DrainFinishesBacklogWithoutRerouting)
{
    auto config = clusterConfig(4, RoutingPolicy::RoundRobin,
                                CachePartitioning::Sharded);
    auto bundle = ddbBundle(200, 400, 24.0);
    const double mid = bundle.trace[200].arrival;
    config.faults.add(mid, 2, FaultKind::Drain);

    ServingSystem system(config);
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);

    EXPECT_EQ(result.metrics.count(), 400u);
    ASSERT_TRUE(result.failover.active);
    const auto &drained = result.failover.nodes[2];
    EXPECT_EQ(drained.reroutedOut, 0u);
    EXPECT_EQ(drained.abortedJobs, 0u);
    EXPECT_GT(drained.drainedS, 0.0);
    EXPECT_EQ(drained.downtimeS, 0.0);
    // Everything the node was assigned it also completed.
    EXPECT_EQ(result.nodes[2].assigned, result.nodes[2].completed);
    // And it admitted nothing after the drain point: every record it
    // could have produced later went elsewhere, so the cluster still
    // served everything.
    std::uint64_t others = 0;
    for (std::size_t n = 0; n < 4; ++n) {
        if (n != 2)
            others += result.nodes[n].completed;
    }
    EXPECT_EQ(others + result.nodes[2].completed, 400u);
}

TEST(Failover, KillRejoinBringsTheNodeBack)
{
    auto config = clusterConfig(4, RoutingPolicy::RoundRobin,
                                CachePartitioning::Sharded);
    auto bundle = ddbBundle(200, 500, 24.0);
    const double killAt = bundle.trace[150].arrival;
    const double rejoinAt = bundle.trace[300].arrival;
    config.faults.add(killAt, 0, FaultKind::Kill)
        .add(rejoinAt, 0, FaultKind::Rejoin);

    ServingSystem system(config);
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);

    EXPECT_EQ(result.metrics.count(), 500u);
    ASSERT_TRUE(result.failover.active);
    const auto &node = result.failover.nodes[0];
    ASSERT_EQ(node.downIntervals.size(), 1u);
    EXPECT_DOUBLE_EQ(node.downIntervals[0].first, killAt);
    EXPECT_DOUBLE_EQ(node.downIntervals[0].second, rejoinAt);
    EXPECT_NEAR(node.downtimeS, rejoinAt - killAt, 1e-9);
    // The rejoined node took assignments again: more than it had
    // completed by the kill (everything pre-kill was rerouted away).
    EXPECT_GT(result.nodes[0].assigned,
              result.failover.nodes[0].reroutedOut);
    EXPECT_EQ(result.nodes[0].assigned,
              result.nodes[0].completed + node.reroutedOut);
    // Conservation still holds cluster-wide.
    std::uint64_t completed = 0;
    for (const auto &ns : result.nodes)
        completed += ns.completed;
    EXPECT_EQ(completed, 500u);
}

TEST(Failover, ReplicatedAdmissionWritesThroughToKNodes)
{
    // Warm a 4-node Replicated(k=2) cluster and check every warm
    // generation landed on exactly its two ring owners.
    auto config = clusterConfig(4, RoutingPolicy::ConsistentHash,
                                CachePartitioning::Replicated, 2);
    config.cacheCapacity = 4000; // no eviction during this check
    auto bundle = ddbBundle(300, 1, 1.0);

    ServingSystem system(config);
    system.warmCache(bundle.warm);
    std::size_t totalEntries = 0;
    for (std::size_t n = 0; n < 4; ++n)
        totalEntries += system.node(n).scheduler().imageCache()->size();
    EXPECT_EQ(totalEntries, 2 * 300u)
        << "each warm generation must be admitted to k=2 replicas";
}

TEST(Failover, ReplicationShortensAffinityRecovery)
{
    // The headline mechanism, as a property: kill a node under
    // consistent-hash routing and compare hit-rate recovery with and
    // without k=2 write-through replication. The healed ring routes
    // the dead node's topics to their old second replica, so with
    // replication the content is already there; without it the shard
    // is simply gone and the topics miss until regenerated. Same
    // regime as bench/ablation_failover's headline figure.
    const auto runWith = [](CachePartitioning partitioning) {
        baselines::PresetParams params;
        params.numWorkers = 8;
        params.cacheCapacity = 1000;
        auto config = baselines::modm(diffusion::sd35Large(),
                                      diffusion::sdxl(), params);
        config.cluster.numNodes = 4;
        config.cluster.routing = RoutingPolicy::ConsistentHash;
        config.cluster.cachePartitioning = partitioning;
        config.cluster.replicationFactor = 2;
        auto bundle = ddbBundle(1000, 3600, 12.0);
        config.faults.add(bundle.trace[1200].arrival, 1,
                          FaultKind::Kill);
        ServingSystem system(config);
        system.warmCache(bundle.warm);
        return system.run(bundle.trace);
    };
    const auto replicated = runWith(CachePartitioning::Replicated);
    const auto sharded = runWith(CachePartitioning::Sharded);

    ASSERT_TRUE(replicated.failover.active);
    const double repRec = replicated.failover.hitRateRecoveryS;
    const double shaRec = sharded.failover.hitRateRecoveryS;
    ASSERT_GE(repRec, 0.0) << "replicated cluster must recover";
    ASSERT_TRUE(shaRec < 0.0 || repRec < 0.8 * shaRec)
        << "replication should cut the recovery window by >= 20% "
        << "(got " << repRec << " vs " << shaRec << ")";
    // Replica admissions actually happened on non-origin nodes.
    std::uint64_t replicaAdmits = 0;
    for (const auto &nf : replicated.failover.nodes)
        replicaAdmits += nf.replicaAdmits;
    EXPECT_GT(replicaAdmits, 0u);
}

TEST(Failover, EmptyPlanIsAStrictNoOp)
{
    // Byte-level: a multi-node run with no fault plan must produce a
    // digest without any failover section, identical to the same
    // config before the subsystem existed (single-node bytes are
    // pinned by frozen hashes in test_multinode.cc).
    auto config = clusterConfig(4, RoutingPolicy::ConsistentHash,
                                CachePartitioning::Sharded);
    auto bundle = ddbBundle(200, 250, 16.0);
    ServingSystem system(config);
    system.warmCache(bundle.warm);
    const auto result = system.run(bundle.trace);
    EXPECT_FALSE(result.failover.active);
    const auto digest = resultDigest(result);
    EXPECT_EQ(digest.find("\nF "), std::string::npos);
    EXPECT_EQ(digest.find("\nD "), std::string::npos);
}

TEST(Failover, SweepDeterminismWithFaultPlans)
{
    // Fault-plan cells stay share-nothing: parallelism 1 vs 4 must be
    // bit-identical, fault lines included.
    const auto makeSpec = [] {
        bench::SweepSpec spec;
        spec.options.title = "failover-property";
        const auto bundle = [] { return ddbBundle(200, 300, 20.0); };
        for (const auto partitioning :
             {CachePartitioning::Sharded, CachePartitioning::Replicated}) {
            for (const auto routing :
                 {RoutingPolicy::RoundRobin,
                  RoutingPolicy::BoundedLoadConsistentHash}) {
                auto config = clusterConfig(4, routing, partitioning);
                config.faults.add(300.0, 1, FaultKind::Kill)
                    .add(700.0, 1, FaultKind::Rejoin);
                spec.add(routingPolicyName(routing), config, bundle);
            }
        }
        return spec;
    };

    std::vector<std::string> serial;
    {
        bench::SweepOptions opts;
        auto spec = makeSpec();
        spec.options.parallelism = 1;
        spec.options.progress = false;
        for (const auto &result : runSweep(spec))
            serial.push_back(resultDigest(result));
    }
    {
        auto spec = makeSpec();
        spec.options.parallelism = 4;
        spec.options.progress = false;
        const auto results = runSweep(spec);
        ASSERT_EQ(results.size(), serial.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(resultDigest(results[i]), serial[i])
                << "fault cell " << i << " diverged across parallelism";
        }
        // Fault lines are present in these digests.
        EXPECT_NE(serial[0].find("\nF "), std::string::npos);
    }
}

TEST(FailoverAnalysis, RecoveryTimesFromSyntheticRecords)
{
    // Hand-built timeline: pre-kill 100% hits at 1 req/s with instant
    // service; the kill turns the next 20 requests into misses whose
    // generations take 30 s (a service stall), then everything hits
    // again with 1 s service.
    MetricsCollector metrics;
    auto push = [&metrics](double arrival, double finish, bool hit) {
        RequestRecord r;
        r.promptId = static_cast<std::uint64_t>(arrival * 1000);
        r.arrival = arrival;
        r.classified = arrival;
        r.start = arrival;
        r.finish = finish;
        r.cacheHit = hit;
        metrics.record(r);
    };
    for (int i = 0; i < 100; ++i)
        push(i, i, true); // [0, 100): 1/s, all hits, no latency
    for (int i = 100; i < 120; ++i)
        push(i, i + 30.0, false); // stalled misses
    for (int i = 120; i < 220; ++i)
        push(i, i + 1.0, true); // recovered

    FaultPlan plan;
    plan.add(100.0, 0, FaultKind::Kill);
    plan.recoveryWindow = 10;
    plan.recoveryTarget = 0.95;
    const auto report = analyzeFailover(metrics, plan);
    EXPECT_TRUE(report.firstKillTime == 100.0);
    EXPECT_DOUBLE_EQ(report.preFaultHitRate, 1.0);
    EXPECT_DOUBLE_EQ(report.preFaultThroughputPerMin, 60.0);
    // Target 0.95 over a 10-wide window needs 10 straight hits; the
    // 20 post-kill misses classify at 100..119, so the first all-hit
    // window closes on the classification at t = 129: 29 s recovery.
    EXPECT_DOUBLE_EQ(report.hitRateRecoveryS, 29.0);
    // Capacity: the 20 stalled generations finish at 130..149, two
    // completions per second alongside the hits. Cumulative
    // completions last trail 0.95 x cumulative arrivals at the first
    // of the two completions at t = 148 — 48 s after the kill.
    EXPECT_DOUBLE_EQ(report.lostCapacityS, 48.0);

    // A plan with no kill yields an inactive-recovery report.
    FaultPlan drainOnly;
    drainOnly.add(50.0, 0, FaultKind::Drain);
    const auto none = analyzeFailover(metrics, drainOnly);
    EXPECT_LT(none.firstKillTime, 0.0);
    EXPECT_LT(none.hitRateRecoveryS, 0.0);
}

TEST(FailoverAnalysis, PlanValidationCatchesAuthoringBugs)
{
    EXPECT_NO_FATAL_FAILURE({
        FaultPlan plan;
        plan.add(10.0, 0, FaultKind::Kill)
            .add(20.0, 0, FaultKind::Rejoin)
            .add(30.0, 1, FaultKind::Drain);
        validatePlan(plan, 2);
    });
    // A kill may supersede an in-progress drain (the node is still
    // up, just not admitting).
    EXPECT_NO_FATAL_FAILURE({
        FaultPlan plan;
        plan.add(10.0, 1, FaultKind::Drain)
            .add(20.0, 1, FaultKind::Kill)
            .add(30.0, 1, FaultKind::Rejoin);
        validatePlan(plan, 2);
    });
    EXPECT_DEATH(
        {
            FaultPlan plan;
            plan.add(10.0, 5, FaultKind::Kill);
            validatePlan(plan, 2);
        },
        "targets node");
    EXPECT_DEATH(
        {
            FaultPlan plan;
            plan.add(10.0, 0, FaultKind::Kill)
                .add(20.0, 1, FaultKind::Kill);
            validatePlan(plan, 2);
        },
        "no admitting node");
    EXPECT_DEATH(
        {
            FaultPlan plan;
            plan.add(10.0, 0, FaultKind::Rejoin);
            validatePlan(plan, 2);
        },
        "already up");
}

} // namespace
} // namespace modm::serving

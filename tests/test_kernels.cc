/**
 * @file
 * Equivalence tests for the dispatched dot kernels (kernels.hh) and
 * unit tests for the aligned row containers (row_store.hh).
 *
 * The load-bearing property is the determinism contract: scalar,
 * unrolled, and avx2 must agree BIT FOR BIT with an in-test reference
 * that spells out the pinned summation order (4 stripes in i order,
 * combined (s0+s1)+(s2+s3), sequential remainder) — on every dim from
 * 1 through 17 plus the production widths, and on unaligned rows, so
 * no tier can smuggle in an alignment fast path that rounds
 * differently. avx512 (present only in MODM_NATIVE builds) is held to
 * a 1-ulp band instead. Everything the batch entry points return —
 * dotBatch, dotGather, topKBatch, bestBatch — must match the
 * single-row kernel exactly, including ordering and tie-break rules.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/kernels.hh"
#include "src/common/rng.hh"
#include "src/common/row_store.hh"
#include "src/common/vec.hh"

namespace modm::kernels {
namespace {

/** Restore the auto-selected tier when a test forced another one. */
class ScopedTier
{
  public:
    ScopedTier() : saved_(active().tier) {}
    ~ScopedTier() { setTier(saved_); }

  private:
    Tier saved_;
};

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers;
    for (const Tier tier : {Tier::Scalar, Tier::Unrolled, Tier::Avx2,
                            Tier::Avx512}) {
        if (tierAvailable(tier))
            tiers.push_back(tier);
    }
    return tiers;
}

/** The contract's summation order, spelled out independently. */
double
referenceDot(const float *a, const float *b, std::size_t n)
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        s1 += static_cast<double>(a[i + 1]) *
            static_cast<double>(b[i + 1]);
        s2 += static_cast<double>(a[i + 2]) *
            static_cast<double>(b[i + 2]);
        s3 += static_cast<double>(a[i + 3]) *
            static_cast<double>(b[i + 3]);
    }
    double acc = (s0 + s1) + (s2 + s3);
    for (; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

/** Distance in representable doubles (total-order bit mapping). */
std::uint64_t
ulpDiff(double x, double y)
{
    const auto ordered = [](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        return (bits & (1ull << 63)) ? ~bits : bits | (1ull << 63);
    };
    const std::uint64_t a = ordered(x);
    const std::uint64_t b = ordered(y);
    return a > b ? a - b : b - a;
}

const std::vector<std::size_t> &
testDims()
{
    static const std::vector<std::size_t> dims = [] {
        std::vector<std::size_t> d;
        for (std::size_t n = 1; n <= 17; ++n)
            d.push_back(n);
        d.push_back(512);
        d.push_back(513);
        return d;
    }();
    return dims;
}

TEST(Kernels, TierNamesAndAvailability)
{
    // The portable tiers exist everywhere; what auto-selection picked
    // must report itself consistently.
    EXPECT_TRUE(tierAvailable(Tier::Scalar));
    EXPECT_TRUE(tierAvailable(Tier::Unrolled));
    const KernelInfo info = active();
    EXPECT_STREQ(info.name, tierName(info.tier));
    EXPECT_TRUE(tierAvailable(info.tier));
    EXPECT_STREQ(tierName(Tier::Scalar), "scalar");
    EXPECT_STREQ(tierName(Tier::Unrolled), "unrolled");
    EXPECT_STREQ(tierName(Tier::Avx2), "avx2");
    EXPECT_STREQ(tierName(Tier::Avx512), "avx512");

    ScopedTier guard;
    for (const Tier tier : availableTiers()) {
        EXPECT_TRUE(setTier(tier));
        EXPECT_EQ(active().tier, tier);
    }
    if (!tierAvailable(Tier::Avx512)) {
        // Forcing an unavailable tier is refused, not crashed into.
        const Tier before = active().tier;
        EXPECT_FALSE(setTier(Tier::Avx512));
        EXPECT_EQ(active().tier, before);
    }
}

TEST(Kernels, DotMatchesReferenceOnEveryDimAndOffset)
{
    ScopedTier guard;
    Rng rng(2026);
    for (const std::size_t dim : testDims()) {
        // Rows live at odd float offsets inside a shared buffer, so a
        // tier can't rely on any alignment beyond sizeof(float).
        for (const std::size_t offset : {std::size_t{0}, std::size_t{1},
                                         std::size_t{3}}) {
            std::vector<float> buf(2 * (dim + offset) + 8);
            const Vec a = randomUnitVec(dim, rng);
            const Vec b = randomUnitVec(dim, rng);
            float *pa = buf.data() + offset;
            float *pb = buf.data() + dim + 2 * offset + 4;
            std::memcpy(pa, a.data(), dim * sizeof(float));
            std::memcpy(pb, b.data(), dim * sizeof(float));

            const double expected = referenceDot(pa, pb, dim);
            for (const Tier tier : availableTiers()) {
                ASSERT_TRUE(setTier(tier));
                const double got = dot(pa, pb, dim);
                if (tier == Tier::Avx512) {
                    EXPECT_LE(ulpDiff(got, expected), 1u)
                        << "avx512 dim " << dim << " offset " << offset;
                } else {
                    EXPECT_EQ(got, expected)
                        << tierName(tier) << " dim " << dim
                        << " offset " << offset;
                }
            }
        }
    }
}

TEST(Kernels, BatchEntryPointsMatchSingleRowDot)
{
    ScopedTier guard;
    constexpr std::size_t kDim = 513; // stride 528: pad in play
    constexpr std::size_t kRows = 71;
    Rng rng(7);
    AlignedRows rows(kDim);
    rows.reserve(kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        rows.pushBack(randomUnitVec(kDim, rng).data());
    const Vec query = randomUnitVec(kDim, rng);

    for (const Tier tier : availableTiers()) {
        ASSERT_TRUE(setTier(tier));
        std::vector<double> batch(kRows);
        dotBatch(query.data(), rows.data(), rows.stride(), kRows, kDim,
                 batch.data());
        std::vector<const float *> scattered(kRows);
        for (std::size_t r = 0; r < kRows; ++r)
            scattered[r] = rows.row(kRows - 1 - r); // reversed order
        std::vector<double> gathered(kRows);
        dotGather(query.data(), scattered.data(), kRows, kDim,
                  gathered.data());
        for (std::size_t r = 0; r < kRows; ++r) {
            const double single = dot(query.data(), rows.row(r), kDim);
            EXPECT_EQ(batch[r], single)
                << tierName(tier) << " dotBatch row " << r;
            EXPECT_EQ(gathered[kRows - 1 - r], single)
                << tierName(tier) << " dotGather row " << r;
        }

        // topKBatch: (score desc, slot asc) against a sorted copy of
        // the batch scores; oversized k returns every row.
        for (const std::size_t k :
             {std::size_t{1}, std::size_t{10}, kRows, kRows + 5}) {
            const auto top = topKBatch(query.data(), rows.data(),
                                       rows.stride(), kRows, kDim, k);
            ASSERT_EQ(top.size(), std::min(k, kRows));
            for (std::size_t i = 1; i < top.size(); ++i) {
                const bool ordered =
                    top[i - 1].score > top[i].score ||
                    (top[i - 1].score == top[i].score &&
                     top[i - 1].slot < top[i].slot);
                EXPECT_TRUE(ordered) << tierName(tier) << " rank " << i;
            }
            for (const auto &scored : top)
                EXPECT_EQ(scored.score, batch[scored.slot]);
        }

        std::size_t slot = 0;
        double score = 0.0;
        ASSERT_TRUE(bestBatch(query.data(), rows.data(), rows.stride(),
                              kRows, kDim, &slot, &score));
        const auto top1 = topKBatch(query.data(), rows.data(),
                                    rows.stride(), kRows, kDim, 1);
        EXPECT_EQ(slot, top1[0].slot) << tierName(tier);
        EXPECT_EQ(score, top1[0].score) << tierName(tier);
        EXPECT_FALSE(bestBatch(query.data(), rows.data(), rows.stride(),
                               0, kDim, &slot, &score));
    }
}

TEST(Kernels, TiersAgreeBitForBitOnBatches)
{
    ScopedTier guard;
    constexpr std::size_t kDim = 512;
    constexpr std::size_t kRows = 200;
    Rng rng(31);
    AlignedRows rows(kDim);
    rows.reserve(kRows);
    for (std::size_t r = 0; r < kRows; ++r)
        rows.pushBack(randomUnitVec(kDim, rng).data());
    const Vec query = randomUnitVec(kDim, rng);

    ASSERT_TRUE(setTier(Tier::Scalar));
    std::vector<double> baseline(kRows);
    dotBatch(query.data(), rows.data(), rows.stride(), kRows, kDim,
             baseline.data());

    for (const Tier tier : availableTiers()) {
        ASSERT_TRUE(setTier(tier));
        std::vector<double> scores(kRows);
        dotBatch(query.data(), rows.data(), rows.stride(), kRows, kDim,
                 scores.data());
        for (std::size_t r = 0; r < kRows; ++r) {
            if (tier == Tier::Avx512) {
                EXPECT_LE(ulpDiff(scores[r], baseline[r]), 1u)
                    << "avx512 row " << r;
            } else {
                EXPECT_EQ(scores[r], baseline[r])
                    << tierName(tier) << " row " << r;
            }
        }
    }
}

TEST(Kernels, BestBatchBreaksExactTiesTowardTheEarliestSlot)
{
    ScopedTier guard;
    constexpr std::size_t kDim = 64;
    Rng rng(5);
    const Vec winner = randomUnitVec(kDim, rng);
    const Vec filler = randomUnitVec(kDim, rng);
    AlignedRows rows(kDim);
    // Identical best rows at slots 1 and 3: slot 1 must win in every
    // tier (strictly-greater admission).
    rows.pushBack(filler.data());
    rows.pushBack(winner.data());
    rows.pushBack(filler.data());
    rows.pushBack(winner.data());
    for (const Tier tier : availableTiers()) {
        ASSERT_TRUE(setTier(tier));
        std::size_t slot = 99;
        double score = 0.0;
        ASSERT_TRUE(bestBatch(winner.data(), rows.data(), rows.stride(),
                              rows.size(), kDim, &slot, &score));
        EXPECT_EQ(slot, std::size_t{1}) << tierName(tier);
        const auto top = topKBatch(winner.data(), rows.data(),
                                   rows.stride(), rows.size(), kDim, 2);
        ASSERT_EQ(top.size(), std::size_t{2});
        EXPECT_EQ(top[0].slot, std::size_t{1}) << tierName(tier);
        EXPECT_EQ(top[1].slot, std::size_t{3}) << tierName(tier);
    }
}

} // namespace
} // namespace modm::kernels

namespace modm {
namespace {

TEST(AlignedRows, StrideRoundsUpToWholeCacheLines)
{
    EXPECT_EQ(alignedRowStride(1), std::size_t{16});
    EXPECT_EQ(alignedRowStride(16), std::size_t{16});
    EXPECT_EQ(alignedRowStride(17), std::size_t{32});
    EXPECT_EQ(alignedRowStride(64), std::size_t{64});
    EXPECT_EQ(alignedRowStride(512), std::size_t{512});
    EXPECT_EQ(alignedRowStride(513), std::size_t{528});
}

TEST(AlignedRows, PushBackSwapRemoveAndAlignment)
{
    constexpr std::size_t kDim = 5; // stride 16: pad floats in play
    AlignedRows rows(kDim);
    EXPECT_TRUE(rows.empty());
    EXPECT_EQ(rows.stride(), std::size_t{16});

    const float a[kDim] = {1, 2, 3, 4, 5};
    const float b[kDim] = {6, 7, 8, 9, 10};
    const float c[kDim] = {11, 12, 13, 14, 15};
    EXPECT_EQ(rows.pushBack(a), std::size_t{0});
    EXPECT_EQ(rows.pushBack(b), std::size_t{1});
    EXPECT_EQ(rows.pushBack(c), std::size_t{2});
    EXPECT_EQ(rows.size(), std::size_t{3});
    EXPECT_EQ(rows.memoryBytes(), 3 * 16 * sizeof(float));

    for (std::size_t slot = 0; slot < rows.size(); ++slot) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rows.row(slot)) % 64,
                  std::uintptr_t{0})
            << "slot " << slot;
        // Pad floats are zeroed so full-stride reads are harmless.
        for (std::size_t i = kDim; i < rows.stride(); ++i)
            EXPECT_EQ(rows.row(slot)[i], 0.0f);
    }
    EXPECT_EQ(rows.row(1)[0], 6.0f);

    // swapRemove moves the last row into the hole.
    rows.swapRemove(0);
    ASSERT_EQ(rows.size(), std::size_t{2});
    EXPECT_EQ(rows.row(0)[0], 11.0f);
    EXPECT_EQ(rows.row(1)[4], 10.0f);
    rows.swapRemove(1); // removing the last row moves nothing
    ASSERT_EQ(rows.size(), std::size_t{1});
    EXPECT_EQ(rows.row(0)[0], 11.0f);

    // Growth across reallocations preserves contents.
    AlignedRows grown(kDim);
    for (std::size_t i = 0; i < 5000; ++i) {
        const float v = static_cast<float>(i);
        const float row[kDim] = {v, v, v, v, v};
        grown.pushBack(row);
    }
    for (std::size_t i = 0; i < 5000; ++i)
        ASSERT_EQ(grown.row(i)[3], static_cast<float>(i));
}

TEST(RowStore, StablePointersAndLifoFreelist)
{
    constexpr std::size_t kDim = 64;
    RowStore store(kDim, /*rowsPerChunk=*/8);
    Rng rng(3);
    const Vec first = randomUnitVec(kDim, rng);
    const RowStore::Slot s0 = store.insert(first.data());
    const float *p0 = store.row(s0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p0) % 64,
              std::uintptr_t{0});

    // Grow far past the first chunk: the old pointer must not move
    // (chunks are appended, never reallocated).
    std::vector<RowStore::Slot> slots;
    for (std::size_t i = 0; i < 100; ++i)
        slots.push_back(store.insert(randomUnitVec(kDim, rng).data()));
    EXPECT_EQ(store.row(s0), p0);
    EXPECT_EQ(store.liveRows(), std::size_t{101});
    EXPECT_EQ(store.memoryBytes(), 101 * store.stride() * sizeof(float));
    for (std::size_t i = 0; i < kDim; ++i)
        EXPECT_EQ(p0[i], first[i]);

    // Released slots come back LIFO, reusing the warm lines.
    store.release(slots[10]);
    store.release(slots[20]);
    EXPECT_EQ(store.liveRows(), std::size_t{99});
    const RowStore::Slot r1 = store.insert(first.data());
    const RowStore::Slot r2 = store.insert(first.data());
    EXPECT_EQ(r1, slots[20]);
    EXPECT_EQ(r2, slots[10]);

    store.clear();
    EXPECT_EQ(store.liveRows(), std::size_t{0});
    EXPECT_EQ(store.memoryBytes(), std::size_t{0});
}

} // namespace
} // namespace modm

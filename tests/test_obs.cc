/**
 * @file
 * Observability-subsystem tests: .mtrace codec round-trips and
 * corruption detection, rolling-hash divergence search (a single
 * perturbed event is localized to exactly that event), span
 * derivation, MetricsRegistry window semantics, and the end-to-end
 * guarantees the rest of the repo leans on — a traced run digests
 * identically to an untraced one, repeat runs produce byte-identical
 * logs, and scenario cells record byte-identical .mtrace logs at
 * sweep parallelism 1 and 4.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/sweep.hh"
#include "src/baselines/presets.hh"
#include "src/common/log.hh"
#include "src/obs/metrics.hh"
#include "src/obs/span.hh"
#include "src/obs/trace.hh"
#include "src/serving/scenario_exec.hh"
#include "src/workload/scenario.hh"

namespace modm::obs {
namespace {

/** Scoped env override; pass nullptr to assert absence in scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *prev = std::getenv(name);
        had_ = prev != nullptr;
        prev_ = had_ ? prev : "";
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_.c_str(), prev_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string prev_;
    bool had_ = false;
};

/** A synthetic log exercising the codec's edge cases. */
TraceLog
makeSyntheticLog(std::size_t n)
{
    TraceLog log;
    double clock = 0.0;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < n; ++i) {
        // Repeated clocks (emits share the dispatch clock), untagged
        // node/request sentinels, request 0, and large ids all appear
        // in real logs.
        if (i % 3 != 0)
            clock += 0.125 * static_cast<double>(i % 5);
        if (i % 4 != 3)
            ++seq;
        const std::uint32_t node =
            i % 7 == 0 ? sim::kNoNode : static_cast<std::uint32_t>(i % 4);
        const std::uint64_t request = i % 5 == 0 ? sim::kNoRequest
            : i % 5 == 1                         ? 0
                                                 : 1000000 + i;
        log.append(clock, seq, static_cast<std::uint16_t>(i % 14),
                   node, request);
    }
    return log;
}

TEST(TraceLog, HashChainsFromTheSeed)
{
    TraceLog log;
    EXPECT_EQ(log.finalHash(), kTraceHashSeed);
    log.append(1.0, 1, 2, 3, 4);
    const std::uint64_t h1 = log.finalHash();
    EXPECT_EQ(h1, TraceLog::chainHash(kTraceHashSeed, log.records()[0]));
    log.append(2.0, 2, 3, 4, 5);
    EXPECT_EQ(log.finalHash(),
              TraceLog::chainHash(h1, log.records()[1]));
    EXPECT_NE(log.finalHash(), h1);
}

TEST(TraceLog, RechainRecomputesAfterMutation)
{
    TraceLog log = makeSyntheticLog(40);
    const std::uint64_t before = log.finalHash();
    log.mutableRecords()[17].kind ^= 1u;
    const std::uint64_t rechained = log.rechain();
    EXPECT_EQ(rechained, log.finalHash());
    EXPECT_NE(log.finalHash(), before);
    log.mutableRecords()[17].kind ^= 1u;
    log.rechain();
    EXPECT_EQ(log.finalHash(), before);
}

TEST(Mtrace, RoundTripPreservesRecordsAndHash)
{
    const TraceLog log = makeSyntheticLog(200);
    const std::string image = encodeTrace(log);
    const TraceLog back = decodeTrace(image, "test");
    ASSERT_EQ(back.size(), log.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
        const auto &a = log.records()[i];
        const auto &b = back.records()[i];
        EXPECT_EQ(a.clock, b.clock);
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.node, b.node);
        EXPECT_EQ(a.request, b.request);
        EXPECT_EQ(a.hash, b.hash);
    }
    EXPECT_EQ(back.finalHash(), log.finalHash());
    // The codec is canonical: re-encoding reproduces the same bytes.
    EXPECT_EQ(encodeTrace(back), image);
}

TEST(Mtrace, EmptyLogRoundTrips)
{
    const TraceLog log;
    const TraceLog back = decodeTrace(encodeTrace(log), "test");
    EXPECT_TRUE(back.empty());
    EXPECT_EQ(back.finalHash(), kTraceHashSeed);
}

TEST(MtraceDeathTest, CorruptImagesAreFatal)
{
    const TraceLog log = makeSyntheticLog(50);
    const std::string image = encodeTrace(log);
    // Bad magic.
    std::string bad = image;
    bad[0] = 'X';
    EXPECT_DEATH(decodeTrace(bad, "test"), "bad magic");
    // Truncation.
    EXPECT_DEATH(decodeTrace(image.substr(0, image.size() / 2), "test"),
                 "truncated");
    // A flipped payload byte breaks the footer hash.
    bad = image;
    bad[10] = static_cast<char>(bad[10] ^ 0x15);
    EXPECT_DEATH(decodeTrace(bad, "test"), "mtrace");
}

TEST(Mtrace, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "obs_roundtrip.mtrace";
    const TraceLog log = makeSyntheticLog(80);
    saveTrace(log, path);
    const TraceLog back = loadTrace(path);
    EXPECT_EQ(encodeTrace(back), encodeTrace(log));
    std::remove(path.c_str());
}

TEST(Divergence, IdenticalLogsReportNone)
{
    const TraceLog a = makeSyntheticLog(100);
    const TraceLog b = makeSyntheticLog(100);
    const Divergence d = firstDivergence(a, b);
    EXPECT_FALSE(d.diverged);
    EXPECT_NE(formatDivergence(d).find("logs identical"),
              std::string::npos);
}

TEST(Divergence, SingleFlipIsLocalizedToExactlyThatEvent)
{
    const TraceLog a = makeSyntheticLog(200);
    for (const std::size_t flip : {std::size_t{0}, std::size_t{97},
                                   std::size_t{199}}) {
        TraceLog b = makeSyntheticLog(200);
        b.mutableRecords()[flip].kind ^= 1u;
        b.rechain();
        const Divergence d = firstDivergence(a, b);
        ASSERT_TRUE(d.diverged);
        EXPECT_EQ(d.index, flip);
        ASSERT_TRUE(d.haveA);
        ASSERT_TRUE(d.haveB);
        EXPECT_EQ(d.a.kind ^ 1u, d.b.kind);
        EXPECT_EQ(d.a.clock, d.b.clock);
        char expect[64];
        std::snprintf(expect, sizeof(expect),
                      "first divergence at event %zu", flip);
        EXPECT_NE(formatDivergence(d).find(expect), std::string::npos);
    }
}

TEST(Divergence, PrefixLogDivergesAtTheShorterEnd)
{
    const TraceLog a = makeSyntheticLog(150);
    TraceLog b = makeSyntheticLog(150);
    b.mutableRecords().resize(120);
    b.rechain();
    const Divergence d = firstDivergence(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.index, 120u);
    EXPECT_TRUE(d.haveA);
    EXPECT_FALSE(d.haveB);
    EXPECT_EQ(d.sizeA, 150u);
    EXPECT_EQ(d.sizeB, 120u);
    EXPECT_NE(formatDivergence(d).find("<log ended>"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end serving runs.

serving::ServingConfig
tracedConfig()
{
    baselines::PresetParams params;
    params.numWorkers = 2;
    params.cacheCapacity = 150;
    auto config = baselines::modm(diffusion::sd35Large(),
                                  diffusion::sdxl(), params);
    config.trace.events = true;
    return config;
}

bench::WorkloadBundle
smallBundle()
{
    return bench::poissonBundle(bench::Dataset::DiffusionDB, 80, 120,
                                12.0);
}

TEST(Tracing, ObservationOnly_TracedDigestEqualsUntraced)
{
    auto untracedConfig = tracedConfig();
    untracedConfig.trace = {};
    const auto untraced =
        bench::runSystem(untracedConfig, smallBundle());
    const auto traced = bench::runSystem(tracedConfig(), smallBundle());
    EXPECT_EQ(serving::resultDigest(untraced),
              serving::resultDigest(traced));
    EXPECT_FALSE(untraced.trace.enabled);
    EXPECT_EQ(untraced.traceLog, nullptr);
    EXPECT_TRUE(traced.trace.enabled);
    ASSERT_NE(traced.traceLog, nullptr);
    EXPECT_GT(traced.trace.events, 0u);
    EXPECT_EQ(traced.trace.events, traced.traceLog->size());
    EXPECT_EQ(traced.trace.hash, traced.traceLog->finalHash());
}

TEST(Tracing, RepeatRunsProduceByteIdenticalLogs)
{
    const auto a = bench::runSystem(tracedConfig(), smallBundle());
    const auto b = bench::runSystem(tracedConfig(), smallBundle());
    ASSERT_NE(a.traceLog, nullptr);
    ASSERT_NE(b.traceLog, nullptr);
    EXPECT_EQ(a.trace.hash, b.trace.hash);
    EXPECT_EQ(encodeTrace(*a.traceLog), encodeTrace(*b.traceLog));
    EXPECT_FALSE(firstDivergence(*a.traceLog, *b.traceLog).diverged);
}

TEST(Tracing, RunWritesLoadableMtraceFile)
{
    const std::string path = ::testing::TempDir() + "obs_run.mtrace";
    auto config = tracedConfig();
    config.trace.path = path;
    const auto result = bench::runSystem(config, smallBundle());
    EXPECT_EQ(result.trace.path, path);
    const TraceLog fromDisk = loadTrace(path);
    ASSERT_NE(result.traceLog, nullptr);
    EXPECT_EQ(encodeTrace(fromDisk), encodeTrace(*result.traceLog));
    std::remove(path.c_str());
}

/**
 * The acceptance pin: a synthetic single-event perturbation of a real
 * run's log is localized by firstDivergence to exactly that event,
 * reporting its clock, node, and request id.
 */
TEST(Tracing, PerturbedRealLogIsLocalizedToTheExactEvent)
{
    const auto result = bench::runSystem(tracedConfig(), smallBundle());
    ASSERT_NE(result.traceLog, nullptr);
    ASSERT_GT(result.traceLog->size(), 10u);
    const std::size_t flip = result.traceLog->size() / 2;
    TraceLog perturbed = *result.traceLog;
    const TraceRecord original = perturbed.records()[flip];
    perturbed.mutableRecords()[flip].kind ^= 1u;
    perturbed.rechain();
    const Divergence d = firstDivergence(*result.traceLog, perturbed);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.index, flip);
    ASSERT_TRUE(d.haveA);
    EXPECT_EQ(d.a.clock, original.clock);
    EXPECT_EQ(d.a.node, original.node);
    EXPECT_EQ(d.a.request, original.request);
    const std::string report = formatDivergence(d);
    EXPECT_NE(report.find(eventKindName(original.kind)),
              std::string::npos);
}

TEST(Tracing, ScenarioCellLogsByteIdenticalAcrossParallelism)
{
    ScopedEnv parallelism("MODM_SWEEP_PARALLELISM", nullptr);
    workload::Scenario scenario;
    std::istringstream text("scenario steady\n"
                            "warm 50\n"
                            "requests 80\n"
                            "rate 10\n"
                            "cache 500\n"
                            "\n"
                            "cell \"modm\"\n"
                            "cell \"vanilla\" system=vanilla\n");
    ASSERT_EQ(workload::parseScenario(text, "test.scn", scenario), "");
    const auto runAll = [&](std::size_t cellParallelism) {
        std::vector<std::function<std::string()>> cells;
        for (std::size_t i = 0; i < scenario.cellCount(); ++i) {
            const auto cell = scenario.cell(i);
            cells.push_back([&scenario, cell] {
                TraceConfig trace;
                trace.events = true;
                const auto result =
                    serving::runScenarioCell(scenario, cell, trace);
                EXPECT_NE(result.traceLog, nullptr);
                return encodeTrace(*result.traceLog);
            });
        }
        bench::SweepOptions options;
        options.parallelism = cellParallelism;
        options.progress = false;
        return bench::runCells<std::string>(cells, options);
    };
    const auto serial = runAll(1);
    const auto concurrent = runAll(4);
    ASSERT_EQ(serial.size(), concurrent.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty());
        EXPECT_EQ(serial[i], concurrent[i])
            << "cell " << i << " trace diverged across parallelism";
        EXPECT_EQ(decodeTrace(serial[i], "serial").finalHash(),
                  decodeTrace(concurrent[i], "concurrent").finalHash());
    }
}

TEST(Tracing, EnvKnobParsesOffMemoryAndPathForms)
{
    {
        ScopedEnv env("MODM_TRACE", nullptr);
        EXPECT_FALSE(traceEnvConfig().enabled());
    }
    {
        ScopedEnv env("MODM_TRACE", "");
        EXPECT_FALSE(traceEnvConfig().enabled());
    }
    {
        ScopedEnv env("MODM_TRACE", "0");
        EXPECT_FALSE(traceEnvConfig().enabled());
    }
    {
        ScopedEnv env("MODM_TRACE", "1");
        const TraceConfig config = traceEnvConfig();
        EXPECT_TRUE(config.events);
        EXPECT_TRUE(config.path.empty());
    }
    {
        ScopedEnv env("MODM_TRACE", "/tmp/run.mtrace");
        const TraceConfig config = traceEnvConfig();
        EXPECT_TRUE(config.events);
        EXPECT_EQ(config.path, "/tmp/run.mtrace");
    }
}

// ---------------------------------------------------------------------
// Spans.

TEST(Spans, DerivedLifecyclesAreConsistent)
{
    const auto result = bench::runSystem(tracedConfig(), smallBundle());
    ASSERT_NE(result.traceLog, nullptr);
    const auto spans = deriveSpans(*result.traceLog);
    ASSERT_FALSE(spans.empty());
    std::size_t arrived = 0;
    std::size_t completed = 0;
    std::size_t hits = 0;
    for (const auto &span : spans) {
        EXPECT_NE(span.request, sim::kNoRequest);
        if (span.arrival >= 0.0)
            ++arrived;
        if (span.routed >= 0.0) {
            ASSERT_FALSE(span.hops.empty());
            EXPECT_EQ(span.hops.front().routed, span.routed);
            EXPECT_EQ(span.hops.size(),
                      static_cast<std::size_t>(span.reroutes) + 1);
        }
        if (span.completed >= 0.0) {
            ++completed;
            if (span.arrival >= 0.0) {
                EXPECT_GE(span.completed, span.arrival);
            }
            EXPECT_NE(span.node, sim::kNoNode);
        }
        if (span.direct) {
            // A direct return is a cache hit served with no worker.
            EXPECT_TRUE(span.hit);
            EXPECT_LT(span.dispatched, 0.0);
        }
        if (span.hit)
            ++hits;
        if (span.dispatched >= 0.0 && span.classified >= 0.0) {
            EXPECT_GE(span.dispatched, span.classified);
        }
    }
    // Every trace request arrived and completed (the sim drains), and
    // the span-level hit count reproduces the run's aggregate.
    EXPECT_EQ(arrived, 120u);
    EXPECT_EQ(completed, 120u);
    EXPECT_EQ(static_cast<double>(hits) / 120.0, result.hitRate);
    EXPECT_FALSE(formatSpan(spans.front()).empty());
}

// ---------------------------------------------------------------------
// Metrics registry.

TEST(Metrics, CounterRowsLandInTheirWindows)
{
    MetricsRegistry registry(10.0);
    const MetricId requests = registry.counter("requests");
    registry.add(requests, 1.0);
    registry.add(requests, 2.0, 2.0);
    registry.add(requests, 25.0);
    const MetricsSeries series = registry.take();
    ASSERT_EQ(series.metrics.size(), 1u);
    EXPECT_EQ(series.metrics[0].name, "requests");
    EXPECT_EQ(series.metrics[0].kind, MetricKind::Counter);
    // Windows 0, 1 (empty but elapsed), 2.
    ASSERT_EQ(series.rows.size(), 3u);
    EXPECT_EQ(series.rows[0].window, 0u);
    EXPECT_EQ(series.rows[0].values[0].count, 2u);
    EXPECT_EQ(series.rows[0].values[0].sum, 3.0);
    EXPECT_EQ(series.rows[1].values[0].count, 0u);
    EXPECT_EQ(series.rows[1].values[0].sum, 0.0);
    EXPECT_EQ(series.rows[2].values[0].count, 1u);
    EXPECT_EQ(series.windowsSeen, 3u);
}

TEST(Metrics, LeadingIdleWindowsEmitNoRows)
{
    MetricsRegistry registry(10.0);
    const MetricId c = registry.counter("c");
    registry.add(c, 95.0);
    const MetricsSeries series = registry.take();
    ASSERT_EQ(series.rows.size(), 1u);
    EXPECT_EQ(series.rows[0].window, 9u);
}

TEST(Metrics, GaugeHoldsItsReadingAcrossWindows)
{
    MetricsRegistry registry(1.0);
    const MetricId depth = registry.gauge("depth");
    const MetricId tick = registry.counter("tick");
    registry.set(depth, 0.5, 7.0);
    registry.set(depth, 0.75, 3.0);
    // Window 1: only the counter samples; the gauge must carry 3.
    registry.add(tick, 1.5);
    registry.set(depth, 2.5, 9.0);
    const MetricsSeries series = registry.take();
    ASSERT_EQ(series.rows.size(), 3u);
    EXPECT_EQ(series.rows[0].values[0].min, 3.0);
    EXPECT_EQ(series.rows[0].values[0].max, 7.0);
    EXPECT_EQ(series.rows[0].values[0].last, 3.0);
    EXPECT_EQ(series.rows[1].values[0].count, 0u);
    EXPECT_EQ(series.rows[1].values[0].last, 3.0);
    EXPECT_EQ(series.rows[2].values[0].last, 9.0);
}

TEST(Metrics, HistogramAggregatesPerWindow)
{
    MetricsRegistry registry(5.0);
    const MetricId latency = registry.histogram("latency");
    registry.observe(latency, 1.0, 4.0);
    registry.observe(latency, 2.0, 1.0);
    registry.observe(latency, 3.0, 9.0);
    const MetricsSeries series = registry.take();
    ASSERT_EQ(series.rows.size(), 1u);
    const WindowValue &v = series.rows[0].values[0];
    EXPECT_EQ(v.count, 3u);
    EXPECT_EQ(v.sum, 14.0);
    EXPECT_EQ(v.min, 1.0);
    EXPECT_EQ(v.max, 9.0);
    EXPECT_EQ(v.last, 9.0);
}

TEST(Metrics, RowBoundDownsamplesButCountsEveryWindow)
{
    MetricsRegistry registry(1.0, 16);
    const MetricId c = registry.counter("c");
    for (int i = 0; i < 100; ++i)
        registry.add(c, static_cast<double>(i) + 0.5);
    const MetricsSeries series = registry.take();
    EXPECT_LE(series.rows.size(), 16u);
    EXPECT_GT(series.rows.size(), 0u);
    EXPECT_EQ(series.windowsSeen, 100u);
    // Retained rows stay window-ordered.
    for (std::size_t i = 1; i < series.rows.size(); ++i)
        EXPECT_LT(series.rows[i - 1].window, series.rows[i].window);
}

TEST(Metrics, CsvCarriesSchemaCellAndAggregates)
{
    MetricsRegistry registry(2.0);
    const MetricId c = registry.counter("arrivals");
    registry.add(c, 0.5);
    const MetricsSeries series = registry.take();
    const std::string csv = series.csv("cellA");
    EXPECT_EQ(csv.rfind("# modm-metrics v1 window=2\n", 0), 0u);
    EXPECT_NE(csv.find("cell,window_start,metric,kind,count,sum,min,"
                       "max,last\n"),
              std::string::npos);
    EXPECT_NE(csv.find("cellA,0,arrivals,counter,1,1,"),
              std::string::npos);
}

TEST(Metrics, ServingRunRecordsASeriesWithoutChangingTheDigest)
{
    auto config = tracedConfig();
    config.trace.events = false;
    config.trace.metricsWindow = 60.0;
    const auto withMetrics = bench::runSystem(config, smallBundle());
    auto plain = config;
    plain.trace = {};
    const auto without = bench::runSystem(plain, smallBundle());
    EXPECT_EQ(serving::resultDigest(withMetrics),
              serving::resultDigest(without));
    ASSERT_FALSE(withMetrics.series.empty());
    EXPECT_EQ(withMetrics.series.window, 60.0);
    double arrivals = 0.0;
    bool found = false;
    for (std::size_t m = 0; m < withMetrics.series.metrics.size(); ++m) {
        if (withMetrics.series.metrics[m].name != "arrivals")
            continue;
        found = true;
        for (const auto &row : withMetrics.series.rows)
            arrivals += row.values[m].sum;
    }
    EXPECT_TRUE(found);
    // Every trace request arrives exactly once (warm-up admissions are
    // not arrivals).
    EXPECT_EQ(arrivals, 120.0);
    EXPECT_TRUE(without.series.empty());
}

TEST(Metrics, BucketCountsMatchHandRolledBucketing)
{
    const std::vector<double> times = {0.0, 59.9, 60.0, 121.0, 250.0};
    const auto buckets = bucketCounts(times, 60.0, 180.0);
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0], 2.0);
    EXPECT_EQ(buckets[1], 1.0);
    EXPECT_EQ(buckets[2], 1.0);
    // duration < 1 still yields one bucket (max(duration, 1)).
    EXPECT_EQ(bucketCounts({0.25}, 1.0, 0.5).size(), 1u);
}

TEST(Metrics, GroupMeansPadTheLastGroupWithZeros)
{
    const auto means = groupMeans({4.0, 2.0, 6.0, 8.0, 10.0}, 2);
    ASSERT_EQ(means.size(), 3u);
    EXPECT_EQ(means[0], 3.0);
    EXPECT_EQ(means[1], 7.0);
    EXPECT_EQ(means[2], 5.0); // (10 + 0) / 2
}

// ---------------------------------------------------------------------
// Leveled logging.

TEST(Logging, LevelNamesAndParsingRoundTrip)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::Error);
}

TEST(LoggingDeathTest, RejectsUnknownLevels)
{
    EXPECT_DEATH(parseLogLevel("verbose"), "MODM_LOG");
}

TEST(Logging, ThresholdFiltersLowerLevels)
{
    const LogLevel prev = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
    setLogLevel(prev);
}

TEST(Logging, EventKindNamesCoverTheEnum)
{
    EXPECT_STREQ(eventKindName(
                     static_cast<std::uint16_t>(EventKind::Arrival)),
                 "arrival");
    EXPECT_STREQ(eventKindName(
                     static_cast<std::uint16_t>(EventKind::Serve)),
                 "serve");
    EXPECT_STREQ(eventKindName(0xfffe), "?");
}

} // namespace
} // namespace modm::obs

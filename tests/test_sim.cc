/**
 * @file
 * Unit tests for the discrete-event core: event queue ordering and
 * clock semantics, GPU worker latency/energy/model-switch accounting,
 * and the cluster helpers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cluster.hh"
#include "src/sim/event_queue.hh"

namespace modm::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        ++fired;
        q.scheduleAfter(1.0, [&] { ++fired; });
    });
    q.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] { ++fired; });
    q.schedule(5.0, [&] { ++fired; });
    q.runUntil(3.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    EXPECT_EQ(q.size(), 1u);
    q.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PeekTime)
{
    EventQueue q;
    q.schedule(7.0, [] {});
    EXPECT_DOUBLE_EQ(q.peekTime(), 7.0);
}

TEST(EventQueue, CancelledEventNeverRuns)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(1); });
    const auto doomed = q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(3.0, [&] { order.push_back(3); });
    EXPECT_EQ(q.size(), 3u);
    q.cancel(doomed);
    EXPECT_EQ(q.size(), 2u);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, CancelFromInsideAHandler)
{
    EventQueue q;
    std::vector<int> order;
    EventQueue::EventId doomed = 0;
    q.schedule(1.0, [&] {
        order.push_back(1);
        q.cancel(doomed);
    });
    doomed = q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(2.0, [&] { order.push_back(3); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelHeadAdvancesPeekAndEmpty)
{
    EventQueue q;
    int ran = 0;
    const auto head = q.schedule(1.0, [&] { ++ran; });
    q.schedule(5.0, [&] { ++ran; });
    q.cancel(head);
    EXPECT_DOUBLE_EQ(q.peekTime(), 5.0);
    q.runAll();
    EXPECT_EQ(ran, 1);
    // Cancelling everything leaves an empty queue and runAll a no-op.
    const auto last = q.schedule(9.0, [&] { ++ran; });
    q.cancel(last);
    EXPECT_TRUE(q.empty());
    q.runAll();
    EXPECT_EQ(ran, 1);
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, CancelOfAlreadyRunEventPanics)
{
    // A stale cancel would leave a tombstone that never retires and
    // corrupt the pending ledger; the queue rejects it outright.
    EventQueue q;
    const auto ran = q.schedule(1.0, [] {});
    q.runAll();
    EXPECT_DEATH(q.cancel(ran), "not pending");
}

/** Recording tap: one (time, seq, meta) tuple per dispatch. */
struct RecordingTap : EventTap
{
    struct Seen
    {
        double time;
        std::uint64_t seq;
        EventMeta meta;
    };
    std::vector<Seen> seen;

    void
    onDispatch(double time, std::uint64_t seq,
               const EventMeta &meta) override
    {
        seen.push_back({time, seq, meta});
    }
};

TEST(EventQueue, TapObservesEveryDispatchWithItsMeta)
{
    EventQueue q;
    RecordingTap tap;
    q.setTap(&tap);
    EXPECT_EQ(q.tap(), &tap);
    q.schedule(2.0, EventMeta{7, 3, 42}, [] {});
    q.schedule(1.0, [] {}); // untagged
    q.scheduleAfter(3.0, EventMeta{9, kNoNode, kNoRequest}, [] {});
    q.runAll();
    ASSERT_EQ(tap.seen.size(), 3u);
    // Dispatch order (by time), not scheduling order.
    EXPECT_DOUBLE_EQ(tap.seen[0].time, 1.0);
    EXPECT_EQ(tap.seen[0].meta.kind, 0);
    EXPECT_EQ(tap.seen[0].meta.node, kNoNode);
    EXPECT_EQ(tap.seen[0].meta.request, kNoRequest);
    EXPECT_DOUBLE_EQ(tap.seen[1].time, 2.0);
    EXPECT_EQ(tap.seen[1].meta.kind, 7);
    EXPECT_EQ(tap.seen[1].meta.node, 3u);
    EXPECT_EQ(tap.seen[1].meta.request, 42u);
    EXPECT_DOUBLE_EQ(tap.seen[2].time, 3.0);
    EXPECT_EQ(tap.seen[2].meta.kind, 9);
    // Queue sequence numbers are distinct and follow scheduling order.
    EXPECT_EQ(tap.seen[0].seq, 1u);
    EXPECT_EQ(tap.seen[1].seq, 0u);
    EXPECT_EQ(tap.seen[2].seq, 2u);
}

TEST(EventQueue, TapSkipsCancelledEventsAndClears)
{
    EventQueue q;
    RecordingTap tap;
    q.setTap(&tap);
    const auto doomed = q.schedule(1.0, EventMeta{1, 0, 0}, [] {});
    q.schedule(2.0, EventMeta{2, 0, 0}, [] {});
    q.cancel(doomed);
    q.runAll();
    ASSERT_EQ(tap.seen.size(), 1u);
    EXPECT_EQ(tap.seen[0].meta.kind, 2);
    // Clearing the tap stops observation without disturbing dispatch.
    q.setTap(nullptr);
    int ran = 0;
    q.schedule(3.0, [&] { ++ran; });
    q.runAll();
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(tap.seen.size(), 1u);
}

TEST(Worker, JobLatencyMatchesModelProfile)
{
    Worker w(0, diffusion::GpuKind::A40);
    const auto model = diffusion::sd35Large();
    // First job pays the model load.
    const double finish = w.startJob(model, 50, 0.0);
    EXPECT_DOUBLE_EQ(finish, model.loadLatency + 50 * 1.20);
    EXPECT_TRUE(w.busyAt(10.0));
    EXPECT_FALSE(w.busyAt(finish));
    EXPECT_EQ(w.residentModel(), "SD3.5L");
}

TEST(Worker, ResidentModelSkipsLoad)
{
    Worker w(0, diffusion::GpuKind::A40);
    const auto model = diffusion::sdxl();
    const double t1 = w.startJob(model, 50, 0.0);
    const double t2 = w.startJob(model, 50, t1);
    EXPECT_DOUBLE_EQ(t2 - t1, 50 * model.stepLatencyA40);
    EXPECT_EQ(w.stats().modelSwitches, 0u);
}

TEST(Worker, SwitchingModelsPaysLoadAndCounts)
{
    Worker w(0, diffusion::GpuKind::A40);
    const double t1 = w.startJob(diffusion::sd35Large(), 50, 0.0);
    const double t2 = w.startJob(diffusion::sdxl(), 50, t1);
    EXPECT_DOUBLE_EQ(
        t2 - t1, diffusion::sdxl().loadLatency +
                     50 * diffusion::sdxl().stepLatencyA40);
    EXPECT_EQ(w.stats().modelSwitches, 1u);
}

TEST(Worker, EnergyIncludesComputeAndIdle)
{
    Worker w(0, diffusion::GpuKind::A40, /*idle_power_w=*/60.0);
    const auto model = diffusion::sd35Large();
    const double finish = w.startJob(model, 50, 0.0);
    const double duration = finish + 100.0;
    const double expected =
        model.stepEnergyJ(diffusion::GpuKind::A40, 50) +
        (duration - w.stats().busySeconds) * 60.0;
    EXPECT_NEAR(w.totalEnergyJ(duration), expected, 1e-6);
}

TEST(Worker, AbortRollsBackToExecutedFraction)
{
    Worker w(0, diffusion::GpuKind::A40, /*idle_power_w=*/60.0);
    const auto model = diffusion::sd35Large();
    const double finish = w.startJob(model, 50, 0.0);
    const double kill = finish / 2.0;
    w.abortJob(kill);
    EXPECT_FALSE(w.busyAt(kill));
    EXPECT_DOUBLE_EQ(w.freeAt(), kill);
    EXPECT_EQ(w.stats().abortedJobs, 1u);
    // Busy time and energy cover only the executed half.
    EXPECT_NEAR(w.stats().busySeconds, kill, 1e-9);
    EXPECT_NEAR(w.stats().computeEnergyJ,
                0.5 * model.stepEnergyJ(diffusion::GpuKind::A40, 50),
                1e-6);
    // The process died: the resident model must reload.
    EXPECT_TRUE(w.residentModel().empty());
    // Aborting an idle worker is a no-op.
    w.abortJob(kill + 1.0);
    EXPECT_EQ(w.stats().abortedJobs, 1u);
}

TEST(Worker, GpuKindSelectsLatencyColumn)
{
    Worker a40(0, diffusion::GpuKind::A40);
    Worker mi(1, diffusion::GpuKind::MI210);
    const auto model = diffusion::sd35Large();
    const double fa = a40.startJob(model, 50, 0.0);
    const double fm = mi.startJob(model, 50, 0.0);
    EXPECT_LT(fa, fm);
}

TEST(Cluster, FindIdleHelpers)
{
    Cluster cluster(3, diffusion::GpuKind::A40);
    EXPECT_EQ(cluster.findAnyIdle(0.0), 0);
    cluster.worker(0).startJob(diffusion::sd35Large(), 50, 0.0);
    EXPECT_EQ(cluster.findAnyIdle(1.0), 1);
    cluster.worker(1).startJob(diffusion::sdxl(), 50, 0.0);
    // Worker 1 finishes eventually; at that point it holds SDXL.
    const double done = cluster.worker(1).freeAt();
    EXPECT_EQ(cluster.findIdleWithModel("SDXL", done), 1);
    EXPECT_EQ(cluster.findIdleWithModel("SD3.5L", done), -1);
}

TEST(Cluster, AggregateStats)
{
    Cluster cluster(2, diffusion::GpuKind::A40);
    cluster.worker(0).startJob(diffusion::sd35Large(), 50, 0.0);
    cluster.worker(1).startJob(diffusion::sdxl(), 50, 0.0);
    EXPECT_EQ(cluster.totalJobs(), 2u);
    EXPECT_GT(cluster.totalBusySeconds(), 0.0);
    EXPECT_GT(cluster.totalEnergyJ(1000.0), 0.0);
}

} // namespace
} // namespace modm::sim
